"""Policy grids for Figs. 4/5 and Table I.

The sweep is the hot path of every headline experiment: the full ladder
is 16 policies x ``n_seeds`` runs.  Two performance layers keep it fast:

* a per-seed :class:`~repro.sim.predcache.PredictionCache` shares the
  timeline/window/softmax precompute across every policy of a seed, and
* ``run(..., workers=N)`` fans ``(policy, seed)`` work out across a
  process pool with picklable run specs; work units are grouped
  seed-major so each worker builds one material per seed it owns.

A resilience layer (``repro.resilience``) keeps the parallel path alive
under real-world failures:

* the pool is a :class:`~repro.resilience.SupervisedPool` — per-task
  timeouts, bounded deterministic-backoff retries and
  ``BrokenProcessPool`` recovery, so a crashed or hung worker costs one
  retry instead of the sweep;
* ``run(journal=...)`` checkpoints every completed ``(policy, seed)``
  cell to a :class:`~repro.resilience.SweepJournal` keyed by the
  sweep's bundle/config digest, making interrupted sweeps resumable;
* ``run(on_failure="salvage")`` returns the merged surviving cells plus
  a :class:`~repro.resilience.DegradationReport` when retries exhaust,
  instead of raising.

All layers are bit-transparent: cached, uncached, parallel, resumed and
chaos-perturbed sweeps produce byte-identical results (asserted by the
test suite and the CI benchmark smoke).
"""

from __future__ import annotations

import copy
import logging
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.policies import (
    Baseline1,
    Baseline2,
    BaselineSpec,
    PolicySpec,
    aas_policy,
    aasr_policy,
    origin_policy,
    rr_policy,
)
from repro.datasets.activities import Activity
from repro.errors import ConfigurationError, ResilienceError
from repro.faults.stats import FaultStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import NULL_OBS, Observability
from repro.obs.trace import NULL_TRACER, TraceEvent, Tracer
from repro.resilience.chaos import ChaosAction, ChaosPlan, apply_chaos
from repro.resilience.journal import (
    SweepJournal,
    baseline_cell,
    decode_baseline_result,
    decode_experiment_result,
    encode_baseline_result,
    encode_experiment_result,
    policy_cell,
    sweep_fingerprint,
)
from repro.resilience.pool import SupervisedPool, SupervisedTask
from repro.resilience.report import DegradationReport, FailedCell
from repro.sim.baselines import BaselineResult, evaluate_baseline
from repro.sim.experiment import HARExperiment
from repro.sim.predcache import PredictionCache
from repro.sim.results import ExperimentResult
from repro.sim.training import TrainedSensorBundle, TrainingConfig
from repro.wsn.node import NodeStats

logger = logging.getLogger(__name__)

#: ``run(on_failure=...)`` modes: fail the sweep, or keep what survived.
ON_FAILURE_MODES = ("raise", "salvage")


def paper_policy_grid(rr_lengths: Sequence[int] = (3, 6, 9, 12)) -> List[PolicySpec]:
    """The full Fig. 5 ladder: RR / AAS / AASR / Origin at each length."""
    grid: List[PolicySpec] = []
    for rr_length in rr_lengths:
        grid.append(rr_policy(rr_length))
        grid.append(aas_policy(rr_length))
        grid.append(aasr_policy(rr_length))
        grid.append(origin_policy(rr_length))
    return grid


@dataclass
class SweepResult:
    """Results of a policy grid plus both baselines.

    ``degradation`` is attached whenever the supervised executor had to
    intervene (retries, pool restarts) or — in salvage mode — cells
    were lost; it is ``None`` for a clean, unperturbed sweep.
    """

    activities: List[Activity]
    policies: Dict[str, ExperimentResult] = field(default_factory=dict)
    baselines: Dict[str, BaselineResult] = field(default_factory=dict)
    degradation: Optional[DegradationReport] = None

    def policy(self, name: str) -> ExperimentResult:
        """Result of one policy by display name."""
        try:
            return self.policies[name]
        except KeyError as error:
            raise ConfigurationError(
                f"no policy named {name!r}; have {sorted(self.policies)}"
            ) from error

    def baseline(self, name: str) -> BaselineResult:
        """Result of one baseline by display name."""
        try:
            return self.baselines[name]
        except KeyError as error:
            raise ConfigurationError(
                f"no baseline named {name!r}; have {sorted(self.baselines)}"
            ) from error

    def accuracy_table(self) -> Dict[str, Dict[Activity, float]]:
        """``{policy/baseline name: {activity: accuracy}}``.

        Policies report classification-*event* accuracy (the paper's
        regime — see :attr:`ExperimentResult.event_accuracy`); for the
        fully-powered baselines every window is an event, so their
        window accuracy is the same quantity.
        """
        table: Dict[str, Dict[Activity, float]] = {}
        for name, result in self.policies.items():
            table[name] = result.per_activity_event_accuracy()
        for name, result in self.baselines.items():
            table[name] = result.per_activity_accuracy()
        return table

    def overall_accuracy(self) -> Dict[str, float]:
        """Overall (event) accuracy per configuration."""
        overall = {name: r.event_accuracy for name, r in self.policies.items()}
        overall.update(
            {name: r.overall_accuracy for name, r in self.baselines.items()}
        )
        return overall

    def mean_improvement(
        self, policy_name: str, baseline_name: str
    ) -> float:
        """Mean per-activity accuracy delta, in percentage points.

        This is how the paper states "RR12-Origin is 2.72 more accurate
        than Baseline-2" (Table I's vs columns, averaged).
        """
        policy_acc = self.policy(policy_name).per_activity_event_accuracy()
        base_acc = self.baseline(baseline_name).per_activity_accuracy()
        deltas = [
            (policy_acc[activity] - base_acc[activity]) * 100.0
            for activity in self.activities
        ]
        return float(np.mean(deltas))


class PolicySweep:
    """Runs a list of policies (plus baselines) on one experiment.

    Averaging over ``n_seeds`` independent runs (different timelines and
    traces, same trained models) stabilizes the reported accuracies.

    Parameters
    ----------
    experiment / n_seeds / include_baselines:
        What to sweep and how many seeds to merge.
    use_prediction_cache:
        Share each seed's :class:`~repro.sim.predcache.RunMaterial`
        across every policy (default).  ``False`` rebuilds the material
        per run — byte-identical results, just slower; kept as the
        benchmark baseline and as a bisection tool.
    use_kernel:
        Route eligible runs through the vectorized
        :mod:`repro.sim.kernel` slot engine.  ``None`` (default) and
        ``True`` enable it: with the prediction cache on and no
        observability, each seed's pending policies run as one batched
        :func:`~repro.sim.kernel.run_policy_batch` (sharing a single
        ``(n_runs, n_slots)`` timeline); otherwise each run decides
        individually via ``HARExperiment.run(kernel=...)``'s
        eligibility rules.  ``False`` forces the scalar slot loop
        everywhere — the bisection/benchmark baseline.  All modes are
        byte-identical.
    worker_rehydrate:
        How ``run(workers=N)`` ships the trained bundle to worker
        processes.  ``None`` (default, auto): when the experiment's
        bundle carries an artifact-store key and the store holds the
        entry, workers receive only the key and rehydrate the bundle
        from disk instead of unpickling the ~8 MB of model weights;
        otherwise the full experiment is pickled exactly as before.
        ``True``/``False`` force the respective path (forcing ``True``
        without a store key falls back to pickling).  A worker whose
        rehydration fails (entry GC'd mid-sweep) retrains
        deterministically from the bundle's recorded recipe, so results
        are byte-identical on every path.
    """

    def __init__(
        self,
        experiment: HARExperiment,
        *,
        n_seeds: int = 1,
        include_baselines: bool = True,
        use_prediction_cache: bool = True,
        use_kernel: Optional[bool] = None,
        worker_rehydrate: Optional[bool] = None,
    ) -> None:
        if n_seeds < 1:
            raise ConfigurationError(f"n_seeds must be >= 1, got {n_seeds}")
        self.experiment = experiment
        self.n_seeds = int(n_seeds)
        self.include_baselines = bool(include_baselines)
        self.use_prediction_cache = bool(use_prediction_cache)
        self.use_kernel = use_kernel
        self.worker_rehydrate = worker_rehydrate

    def run(
        self,
        policies: Optional[Sequence[PolicySpec]] = None,
        *,
        seed: Optional[int] = None,
        workers: int = 1,
        obs: Optional[Observability] = None,
        journal: Optional[Union[str, SweepJournal]] = None,
        resume: bool = True,
        on_failure: str = "raise",
        task_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
        chaos: Optional[ChaosPlan] = None,
    ) -> SweepResult:
        """Run the grid; multi-seed runs are merged slot-wise.

        ``workers > 1`` fans the (policy, seed) grid out across a
        :class:`~repro.resilience.SupervisedPool` of that many
        processes — a crashed, hung or poisoned worker is retried up to
        ``max_retries`` times (``task_timeout_s`` bounds each attempt,
        ``retry_backoff_s`` spaces resubmissions deterministically).
        ``workers=1`` is the plain sequential loop.  Results are merged
        in policy-grid order either way, so the returned
        :class:`SweepResult` is identical for any worker count.

        ``journal`` (a path or an open
        :class:`~repro.resilience.SweepJournal`) checkpoints every
        completed cell as it finishes; with ``resume=True`` (default)
        cells already journaled by a previous — possibly crashed or
        interrupted — run of the *same* sweep are served from disk, and
        the resumed sweep is byte-identical to a clean one.
        ``resume=False`` discards a passed path's existing content.

        ``on_failure`` decides what happens when a cell exhausts its
        retries: ``"raise"`` (default) raises
        :class:`~repro.errors.ResilienceError` after the rest of the
        grid finished (completed cells stay journaled), ``"salvage"``
        merges the surviving cells and attaches a
        :class:`~repro.resilience.DegradationReport` as
        ``result.degradation``.

        ``chaos`` injects a :class:`~repro.resilience.ChaosPlan` of
        scheduled worker crashes/hangs and store-entry deletions into
        the parallel path — the test/bench harness for everything
        above.

        ``obs`` instruments the sweep.  Sequentially the bundle is
        threaded straight into every run; with ``workers > 1`` each
        work unit records into a fresh registry in its process and the
        parent folds the per-unit snapshots back in deterministic unit
        order, so counters and histograms merge to exactly the
        sequential values (see
        :meth:`repro.obs.MetricsRegistry.deterministic_dict`).  Unit
        traces are re-sequenced into the parent tracer in the same
        order.  Supervision incidents land in ``resilience.*`` counters
        (nothing is recorded on the clean path).
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if on_failure not in ON_FAILURE_MODES:
            raise ConfigurationError(
                f"on_failure must be one of {ON_FAILURE_MODES}, got {on_failure!r}"
            )
        if chaos is not None and not chaos.empty and workers == 1:
            raise ConfigurationError(
                "chaos injection needs workers > 1 (there is no pool to "
                "perturb in the sequential path)"
            )
        policies = list(policies) if policies is not None else paper_policy_grid()
        base_seed = self.experiment.seed if seed is None else int(seed)
        obs = obs if obs is not None else NULL_OBS

        own_journal = False
        if journal is not None and not isinstance(journal, SweepJournal):
            journal = SweepJournal.open(
                journal, sweep_fingerprint(self.experiment), resume=resume
            )
            own_journal = True
        elif isinstance(journal, SweepJournal):
            expected = sweep_fingerprint(self.experiment)
            if journal.fingerprint != expected:
                raise ResilienceError(
                    f"journal {journal.path} was opened for fingerprint "
                    f"{journal.fingerprint!r}; this sweep is {expected!r}"
                )

        result = SweepResult(activities=list(self.experiment.dataset.spec.activities))
        failed: List[FailedCell] = []
        incidents: Dict[str, int] = {}
        if obs.enabled:
            obs.metrics.gauge("sweep.total_cells").set(len(policies) * self.n_seeds)
        try:
            with obs.timed("sweep.run"):
                if workers == 1 or not policies:
                    runs_by_policy = self._run_sequential(
                        policies, base_seed, obs,
                        journal=journal, on_failure=on_failure, failed=failed,
                    )
                else:
                    runs_by_policy, incidents = self._run_parallel(
                        policies, base_seed, workers, obs,
                        journal=journal, on_failure=on_failure, failed=failed,
                        task_timeout_s=task_timeout_s, max_retries=max_retries,
                        retry_backoff_s=retry_backoff_s, chaos=chaos,
                    )
                for spec in policies:
                    surviving = [
                        run for run in runs_by_policy[spec.name] if run is not None
                    ]
                    if surviving:
                        result.policies[spec.name] = _merge_runs(surviving)

                if failed or any(incidents.values()):
                    result.degradation = DegradationReport(
                        total_cells=len(policies) * self.n_seeds,
                        failed=failed,
                        retries=incidents.get("retries", 0),
                        timeouts=incidents.get("timeouts", 0),
                        crashes=incidents.get("crashes", 0),
                        pool_restarts=incidents.get("pool_restarts", 0),
                    )
                if failed and on_failure == "raise":
                    raise ResilienceError(result.degradation.summary())

                if self.include_baselines:
                    for baseline in (Baseline1, Baseline2):
                        runs = [
                            self._baseline_run(baseline, base_seed + offset, journal, obs)
                            for offset in range(self.n_seeds)
                        ]
                        result.baselines[baseline.name] = _merge_baselines(runs)
        finally:
            if own_journal:
                journal.close()
        return result

    # ------------------------------------------------------------------
    # execution backends
    # ------------------------------------------------------------------

    def _run_sequential(
        self,
        policies: Sequence[PolicySpec],
        base_seed: int,
        obs: Observability,
        *,
        journal: Optional[SweepJournal] = None,
        on_failure: str = "raise",
        failed: Optional[List[FailedCell]] = None,
    ) -> Dict[str, List[Optional[ExperimentResult]]]:
        """Seed-major loop: one material build serves every policy.

        Journal hits skip both the run and — when a whole seed is
        already journaled — that seed's material build.  With the
        prediction cache on (and no observability) a seed's pending
        policies run as one batched kernel call; a batch failure falls
        back to the per-run loop so salvage semantics stay per-cell.
        """
        cache = (
            PredictionCache(self.experiment, obs=obs)
            if self.use_prediction_cache
            else None
        )
        runs: Dict[str, List[Optional[ExperimentResult]]] = {
            spec.name: [None] * self.n_seeds for spec in policies
        }
        batchable = (
            self.use_kernel is not False and cache is not None and not obs.enabled
        )
        for offset in range(self.n_seeds):
            run_seed = base_seed + offset
            material = None
            pending: List[PolicySpec] = []
            for spec in policies:
                cell = policy_cell(spec, run_seed)
                if journal is not None:
                    payload = journal.get(cell)
                    if payload is not None:
                        if obs.enabled:
                            obs.metrics.inc("resilience.journal.hit")
                        runs[spec.name][offset] = decode_experiment_result(payload)
                        continue
                pending.append(spec)
            if not pending:
                continue

            if batchable:
                material = cache.material(run_seed)
                batch = _kernel_batch(self.experiment, pending, run_seed, material)
                if batch is not None:
                    for spec, run in zip(pending, batch):
                        if journal is not None:
                            journal.record(
                                policy_cell(spec, run_seed),
                                encode_experiment_result(run),
                            )
                        runs[spec.name][offset] = run
                    continue

            if cache is not None and material is None:
                material = cache.material(run_seed)
            for spec in pending:
                cell = policy_cell(spec, run_seed)
                try:
                    run = self.experiment.run(
                        spec, seed=run_seed, material=material, obs=obs,
                        kernel=self.use_kernel,
                    )
                except Exception as error:
                    if on_failure != "salvage":
                        raise
                    logger.error("cell %s failed; salvaging: %s", cell, error)
                    failed.append(
                        FailedCell(
                            cell=cell,
                            seed=run_seed,
                            attempts=1,
                            cause=f"{type(error).__name__}: {error}",
                            policy=spec.name,
                        )
                    )
                    continue
                if journal is not None:
                    journal.record(cell, encode_experiment_result(run))
                runs[spec.name][offset] = run
                if obs.enabled:
                    obs.metrics.inc("sweep.progress.cells")
                    timeseries = obs.timeseries
                    if timeseries is not None:
                        timeseries.sample()
        return runs

    def _run_parallel(
        self,
        policies: Sequence[PolicySpec],
        base_seed: int,
        workers: int,
        obs: Observability,
        *,
        journal: Optional[SweepJournal],
        on_failure: str,
        failed: List[FailedCell],
        task_timeout_s: Optional[float],
        max_retries: int,
        retry_backoff_s: float,
        chaos: Optional[ChaosPlan],
    ) -> Tuple[Dict[str, List[Optional[ExperimentResult]]], Dict[str, int]]:
        """Fan (policy, seed) units out over a supervised process pool.

        Units are seed-major chunks of the (journal-filtered) policy
        list: with fewer workers than seeds each unit is a whole seed
        (one material build per unit); with more workers each seed's
        policy list is split so every worker stays busy.  Unit order —
        and therefore result order, metrics-merge order and trace
        order — is deterministic; retries do not perturb it because
        outcomes fold in unit order regardless of completion order.
        """
        runs: Dict[str, List[Optional[ExperimentResult]]] = {
            spec.name: [None] * self.n_seeds for spec in policies
        }
        remaining: List[Tuple[int, List[int]]] = []
        for offset in range(self.n_seeds):
            run_seed = base_seed + offset
            left: List[int] = []
            for index, spec in enumerate(policies):
                payload = (
                    journal.get(policy_cell(spec, run_seed))
                    if journal is not None
                    else None
                )
                if payload is not None:
                    if obs.enabled:
                        obs.metrics.inc("resilience.journal.hit")
                    runs[spec.name][offset] = decode_experiment_result(payload)
                else:
                    left.append(index)
            if left:
                remaining.append((offset, left))
        if not remaining:
            return runs, {}

        chunks = max(1, math.ceil(workers / len(remaining)))
        units: List[Tuple[int, List[int]]] = []
        for offset, indices in remaining:
            for split in _split_indices(len(indices), min(chunks, len(indices))):
                units.append((offset, [indices[i] for i in split]))
        logger.debug(
            "parallel sweep: %d unit(s) over %d worker(s), %d policies x %d seeds",
            len(units), workers, len(policies), self.n_seeds,
        )

        with_obs = obs.enabled
        with_trace = with_obs and obs.tracer.enabled
        initargs = self._worker_initargs()
        if chaos is not None and chaos.drop_store_keys:
            # Deleted *after* initargs were computed, so workers that
            # planned to rehydrate must fall back to the recorded
            # deterministic-retrain recipe.
            apply_chaos_store_drops(chaos.drop_store_keys)

        tasks: List[SupervisedTask] = []
        for unit_index, (offset, indices) in enumerate(units):
            specs = [policies[i] for i in indices]
            run_seed = base_seed + offset

            def args_for(
                attempt: int,
                specs: List[PolicySpec] = specs,
                run_seed: int = run_seed,
                unit_index: int = unit_index,
            ) -> Tuple[Any, ...]:
                action = (
                    chaos.action_for(unit_index, attempt)
                    if chaos is not None
                    else None
                )
                return (specs, run_seed, with_obs, with_trace, action)

            tasks.append(
                SupervisedTask(
                    fn=_run_sweep_unit,
                    args_for_attempt=args_for,
                    label=f"unit{unit_index}:seed{run_seed}x{len(specs)}",
                )
            )

        def checkpoint(outcome: Any) -> None:
            # Runs in completion order: each finished unit is journaled
            # immediately, so an interrupt loses at most in-flight work.
            if not outcome.ok:
                return
            offset, indices = units[outcome.index]
            unit_runs = outcome.result[0]
            if journal is not None:
                for index, run in zip(indices, unit_runs):
                    journal.record(
                        policy_cell(policies[index], base_seed + offset),
                        encode_experiment_result(run),
                    )
            if obs.enabled:
                # One increment per finished cell, parent-side, so the
                # total matches the sequential path for any layout.
                obs.metrics.inc("sweep.progress.cells", len(indices))
                timeseries = obs.timeseries
                if timeseries is not None:
                    timeseries.sample()

        pool = SupervisedPool(
            workers,
            initializer=_init_sweep_worker,
            initargs=initargs,
            task_timeout_s=task_timeout_s,
            max_retries=max_retries,
            backoff_s=retry_backoff_s,
            obs=obs,
        )
        outcomes = pool.run(tasks, on_outcome=checkpoint)

        for (offset, indices), outcome in zip(units, outcomes):
            if outcome.ok:
                unit_runs, unit_metrics, unit_events = outcome.result
                for index, run in zip(indices, unit_runs):
                    runs[policies[index].name][offset] = run
                # Fold worker observability back in unit order — the
                # order is deterministic, so the merged registry is
                # identical for any worker count.
                if unit_metrics is not None:
                    obs.metrics.merge(MetricsRegistry.from_dict(unit_metrics))
                if unit_events is not None:
                    obs.tracer.extend(unit_events)
            else:
                run_seed = base_seed + offset
                for index in indices:
                    failed.append(
                        FailedCell(
                            cell=policy_cell(policies[index], run_seed),
                            seed=run_seed,
                            attempts=outcome.attempts,
                            cause=outcome.cause or "unknown",
                            policy=policies[index].name,
                        )
                    )
        return runs, dict(pool.stats)

    def _worker_initargs(self) -> Tuple[Any, ...]:
        """What each pool worker is initialized with.

        Preferred: a bundle-less experiment stub plus the store key —
        workers rehydrate the trained bundle from the artifact store,
        so the pickled payload shrinks to the dataset + config.  The
        full-experiment pickle remains the fallback whenever the bundle
        has no store provenance, the store is disabled, or the entry is
        gone.
        """
        stub, store_key, recipe = worker_experiment_payload(
            self.experiment, rehydrate=self.worker_rehydrate
        )
        return (stub, self.use_prediction_cache, store_key, recipe, self.use_kernel)

    def _run_baseline(self, baseline: BaselineSpec, seed: int) -> BaselineResult:
        return evaluate_baseline(
            self.experiment.dataset,
            self.experiment.bundle,
            baseline,
            n_windows=self.experiment.config.n_windows,
            seed=seed,
            dwell_scale=self.experiment.config.dwell_scale,
        )

    def _baseline_run(
        self,
        baseline: BaselineSpec,
        seed: int,
        journal: Optional[SweepJournal],
        obs: Observability,
    ) -> BaselineResult:
        """One baseline run, served from / recorded into the journal."""
        if journal is not None:
            payload = journal.get(baseline_cell(baseline.name, seed))
            if payload is not None:
                if obs.enabled:
                    obs.metrics.inc("resilience.journal.hit")
                return decode_baseline_result(payload)
        run = self._run_baseline(baseline, seed)
        if journal is not None:
            journal.record(
                baseline_cell(baseline.name, seed), encode_baseline_result(run)
            )
        return run


def _kernel_batch(
    experiment: HARExperiment,
    specs: Sequence[PolicySpec],
    seed: int,
    material,
) -> Optional[List[ExperimentResult]]:
    """One seed's policies through the batched kernel, or ``None``.

    ``None`` (material ineligible or the batch failed) tells the caller
    to fall back to the per-run loop, which preserves per-cell error
    semantics; kernel-vs-scalar identity means the fallback changes
    nothing but speed.
    """
    from repro.sim.kernel import kernel_eligible, run_policy_batch

    if not kernel_eligible(
        material=material, window_transform=None, faults=None, obs=None
    ):
        return None
    try:
        return run_policy_batch(experiment, specs, seed, material=material)
    except Exception as error:
        logger.warning(
            "kernel batch failed for seed %d (%s); falling back to scalar runs",
            seed, error,
        )
        return None


# ---------------------------------------------------------------------------
# process-pool plumbing (module level so everything pickles)
# ---------------------------------------------------------------------------

_WORKER_EXPERIMENT: Optional[HARExperiment] = None
_WORKER_CACHE: Optional[PredictionCache] = None
_WORKER_USE_KERNEL: Optional[bool] = None


@dataclass(frozen=True)
class _BundleRecipe:
    """Enough provenance to retrain a bundle deterministically.

    Shipped to workers alongside the store key so a rehydration miss
    (the entry was GC'd between submit and worker start) degrades to an
    identical retrain instead of a failed sweep.
    """

    budget_j: float
    seed: Optional[int]
    config: Optional[TrainingConfig]
    cost_model: Any


def _store_has_entry(key: str) -> bool:
    """Whether the default artifact store currently holds ``key``."""
    from repro.store.core import default_store

    store = default_store()
    return store.enabled and store.contains(key)


def worker_experiment_payload(
    experiment: HARExperiment, *, rehydrate: Optional[bool] = None
) -> Tuple[HARExperiment, Optional[str], Optional[_BundleRecipe]]:
    """``(experiment stub, store key, recipe)`` to ship to pool workers.

    The store-keyed rehydration contract shared by the sweep and fleet
    executors: when the bundle has artifact-store provenance (and the
    entry exists), the returned stub is bundle-less and workers
    rehydrate it by key — falling back to a deterministic retrain from
    ``recipe`` if the entry vanished.  Otherwise the full experiment is
    returned with ``(None, None)`` and pickles as before.  ``rehydrate``
    forces either path (forcing ``True`` without an available entry
    still falls back to pickling).
    """
    bundle = experiment.bundle
    store_key = getattr(bundle, "store_key", None)
    if rehydrate is None or rehydrate:
        available = store_key is not None and _store_has_entry(store_key)
        rehydrate = available if rehydrate is None else (rehydrate and available)
    if not rehydrate:
        return experiment, None, None
    stub = copy.copy(experiment)
    stub.bundle = None
    recipe = _BundleRecipe(
        budget_j=bundle.budget_j,
        seed=bundle.train_seed,
        config=bundle.train_config,
        cost_model=bundle.cost_model,
    )
    logger.debug("pool workers rehydrate bundle from key %s", store_key)
    return stub, store_key, recipe


def apply_chaos_store_drops(keys: Sequence[str]) -> None:
    """Delete artifact-store entries on the chaos plan's behalf."""
    from repro.store.core import default_store

    store = default_store()
    if not store.enabled:
        return
    for key in keys:
        logger.warning("chaos: dropping store entry %s before the sweep", key)
        store.invalidate(key)


def _worker_bundle(
    experiment: HARExperiment, store_key: str, recipe: Optional[_BundleRecipe]
) -> TrainedSensorBundle:
    """Rehydrate the trained bundle in a worker, retraining on a miss."""
    from repro.store.bundles import load_trained_bundle
    from repro.store.core import default_store

    store = default_store()
    if store.enabled:
        # Deliberately unobserved: worker-side store traffic must not
        # perturb the workers=N == workers=1 metrics-merge contract.
        bundle = load_trained_bundle(store, store_key, experiment.dataset)
        if bundle is not None:
            return bundle
    if recipe is None or recipe.seed is None or recipe.config is None:
        raise ConfigurationError(
            f"store entry {store_key} vanished and no training recipe was "
            "recorded; cannot rehydrate the sweep worker"
        )
    logger.warning(
        "store entry %s unavailable in worker; retraining deterministically",
        store_key,
    )
    return TrainedSensorBundle.train(
        experiment.dataset,
        recipe.budget_j,
        seed=recipe.seed,
        config=recipe.config,
        cost_model=recipe.cost_model,
    )


def _init_sweep_worker(
    experiment: HARExperiment,
    use_prediction_cache: bool,
    store_key: Optional[str] = None,
    recipe: Optional[_BundleRecipe] = None,
    use_kernel: Optional[bool] = None,
) -> None:
    """Install the (pickled-once) experiment in this worker process.

    With a ``store_key`` the experiment arrives bundle-less and the
    trained bundle is rehydrated from the artifact store (or retrained
    from ``recipe`` if the entry vanished) before the prediction cache
    is built.
    """
    global _WORKER_EXPERIMENT, _WORKER_CACHE, _WORKER_USE_KERNEL
    if store_key is not None:
        experiment.bundle = _worker_bundle(experiment, store_key, recipe)
    _WORKER_EXPERIMENT = experiment
    _WORKER_CACHE = PredictionCache(experiment) if use_prediction_cache else None
    _WORKER_USE_KERNEL = use_kernel


def _run_sweep_unit(
    specs: List[PolicySpec],
    seed: int,
    with_obs: bool = False,
    with_trace: bool = False,
    chaos: Optional[ChaosAction] = None,
) -> Tuple[List[ExperimentResult], Optional[Dict[str, Any]], Optional[List[TraceEvent]]]:
    """Run one seed's chunk of policies inside a worker process.

    Returns the runs plus (when requested) this unit's metrics snapshot
    and trace events, which the parent folds back in unit order.
    ``chaos`` (injected per attempt by the harness) fires before any
    work, so a crashed/hung attempt contributes nothing and the clean
    retry produces the full, deterministic unit result.
    """
    if _WORKER_EXPERIMENT is None:
        raise ConfigurationError("sweep worker used before initialization")
    apply_chaos(chaos)
    if with_obs:
        obs = Observability(tracer=Tracer() if with_trace else NULL_TRACER)
    else:
        obs = NULL_OBS
    material = _WORKER_CACHE.material(seed) if _WORKER_CACHE is not None else None
    runs = None
    if _WORKER_USE_KERNEL is not False and material is not None and not with_obs:
        runs = _kernel_batch(_WORKER_EXPERIMENT, specs, seed, material)
    if runs is None:
        runs = [
            _WORKER_EXPERIMENT.run(
                spec, seed=seed, material=material, obs=obs,
                kernel=_WORKER_USE_KERNEL,
            )
            for spec in specs
        ]
    if not with_obs:
        return runs, None, None
    return (
        runs,
        obs.metrics.to_dict(),
        obs.tracer.events if with_trace else None,
    )


def _split_indices(count: int, chunks: int) -> List[List[int]]:
    """``range(count)`` as ``chunks`` near-equal contiguous index lists."""
    step = math.ceil(count / chunks)
    return [
        list(range(start, min(start + step, count)))
        for start in range(0, count, step)
    ]


# ---------------------------------------------------------------------------
# multi-seed merging
# ---------------------------------------------------------------------------


def _merge_runs(runs: List[ExperimentResult]) -> ExperimentResult:
    """Concatenate multi-seed runs into one result.

    Slot records concatenate; per-node counters sum across runs; fault
    accounting (when any run carries it) merges into one
    :class:`~repro.faults.stats.FaultStats`.
    """
    merged = ExperimentResult(
        policy_name=runs[0].policy_name, activities=runs[0].activities
    )
    for run in runs:
        merged.records.extend(run.records)
        merged.comm_energy_j += run.comm_energy_j
        merged.confidence_updates += run.confidence_updates
    node_ids = sorted({node_id for run in runs for node_id in run.node_stats})
    merged.node_stats = {
        node_id: NodeStats.merged(
            run.node_stats[node_id] for run in runs if node_id in run.node_stats
        )
        for node_id in node_ids
    }
    faulted = [run.fault_stats for run in runs if run.fault_stats is not None]
    if faulted:
        merged.fault_stats = FaultStats.merged(faulted)
    return merged


def _merge_baselines(runs: List[BaselineResult]) -> BaselineResult:
    """Concatenate multi-seed baseline runs."""
    return BaselineResult(
        baseline_name=runs[0].baseline_name,
        activities=runs[0].activities,
        true_labels=np.concatenate([run.true_labels for run in runs]),
        predicted_labels=np.concatenate([run.predicted_labels for run in runs]),
    )
