"""Benchmark the sweep performance layer (prediction cache + workers).

Times the paper policy grid three ways on a standard MHEALTH-like
experiment and writes the machine-readable comparison to
``benchmarks/results/BENCH_sweep.json``:

1. sequential, cache off — every run rebuilds its own material
   (timeline, windows, batched softmax) from scratch;
2. sequential, cache on — one material per seed shared by all
   policies of the grid;
3. parallel, cache on — the same cached sweep fanned out over a
   process pool.

All three must produce byte-identical per-slot records; the script
exits nonzero if they diverge, which is what the CI smoke step checks
(``--smoke`` shrinks the horizon/seeds so it finishes quickly and
leaves the committed JSON untouched unless ``--output`` is given).

A fourth pass re-runs the cached sequential sweep under a fully
enabled :class:`repro.obs.Observability` (tracer + metrics) and reports
the tracing overhead as a percentage of the untraced wall time — the
budget is <10%, enforced in ``--smoke`` mode.

Run with ``PYTHONPATH=src python benchmarks/bench_perf_sweep.py``.
Deliberately a standalone script, not a pytest bench: it measures
wall-clock ratios and must control its own repetition and output.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.obs.observer import Observability
from repro.sim.experiment import HARExperiment, SimulationConfig
from repro.sim.sweep import PolicySweep, paper_policy_grid

try:
    from benchmarks.runmeta import WallClock, write_stamped_json
except ImportError:  # invoked as a script: sibling import
    from runmeta import WallClock, write_stamped_json

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "results", "BENCH_sweep.json")

#: Acceptable tracing overhead (fraction of untraced wall time).
OVERHEAD_BUDGET = 0.10


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short horizon; verify identity + overhead budget, skip the JSON",
    )
    parser.add_argument("--seeds", type=int, default=4, help="seeds per sweep")
    parser.add_argument("--workers", type=int, default=4, help="parallel pool size")
    parser.add_argument(
        "--n-windows", type=int, default=300, help="slots per run (one window each)"
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"JSON destination (default {DEFAULT_OUTPUT}; never written in --smoke "
        "mode unless given explicitly)",
    )
    return parser.parse_args(argv)


def results_identical(a, b):
    """Byte-identity of two SweepResults over the whole grid."""
    if set(a.policies) != set(b.policies):
        return False
    for name in a.policies:
        lhs, rhs = a.policy(name), b.policy(name)
        if lhs.records != rhs.records:
            return False
        if lhs.node_stats != rhs.node_stats:
            return False
        if lhs.comm_energy_j != rhs.comm_energy_j:
            return False
    return True


def timed_sweep(experiment, policies, *, n_seeds, seed, cache, workers, obs=None):
    """One sweep run, wall-timed; returns (seconds, SweepResult)."""
    sweep = PolicySweep(
        experiment,
        n_seeds=n_seeds,
        include_baselines=False,
        use_prediction_cache=cache,
    )
    with WallClock() as clock:
        result = sweep.run(policies, seed=seed, workers=workers, obs=obs)
    return clock.elapsed_s, result


def main(argv=None) -> int:
    args = parse_args(argv)
    policies = paper_policy_grid()
    if args.smoke:
        n_windows, n_seeds = 40, 2
    else:
        n_windows, n_seeds = args.n_windows, args.seeds

    print(
        f"building experiment (n_windows={n_windows}, grid={len(policies)} policies, "
        f"seeds={n_seeds}, workers={args.workers}) ...",
        flush=True,
    )
    experiment = HARExperiment.standard_mhealth(
        seed=7, config=SimulationConfig(n_windows=n_windows)
    )

    run = lambda **kw: timed_sweep(  # noqa: E731
        experiment, policies, n_seeds=n_seeds, seed=11, **kw
    )
    with WallClock() as total_clock:
        t_uncached, r_uncached = run(cache=False, workers=1)
        print(f"sequential uncached : {t_uncached:8.2f} s", flush=True)
        t_cached, r_cached = run(cache=True, workers=1)
        print(f"sequential cached   : {t_cached:8.2f} s", flush=True)
        t_parallel, r_parallel = run(cache=True, workers=args.workers)
        print(f"parallel cached x{args.workers}  : {t_parallel:8.2f} s", flush=True)

        # Overhead pass: same cached sequential sweep, full observability.
        # In smoke mode each leg takes a fraction of a second, so take
        # min-of-3 interleaved pairs to keep the budget gate stable
        # against machine noise.
        reps = 3 if args.smoke else 1
        t_base, t_traced = t_cached, None
        for _ in range(reps):
            t_plain_i, _ = run(cache=True, workers=1)
            obs = Observability()
            t_traced_i, r_traced = run(cache=True, workers=1, obs=obs)
            t_base = min(t_base, t_plain_i)
            t_traced = t_traced_i if t_traced is None else min(t_traced, t_traced_i)
        overhead = (t_traced - t_base) / t_base
        print(
            f"traced cached       : {t_traced:8.2f} s "
            f"({overhead:+.1%} vs untraced, {len(obs.tracer.events)} events)",
            flush=True,
        )

    identical = (
        results_identical(r_uncached, r_cached)
        and results_identical(r_uncached, r_parallel)
        and results_identical(r_uncached, r_traced)
    )
    if not identical:
        print("FAIL: cached/parallel/traced sweeps diverged from the baseline")
        return 1
    print("per-slot records byte-identical across all four modes")
    if args.smoke and overhead > OVERHEAD_BUDGET:
        print(
            f"FAIL: tracing overhead {overhead:.1%} exceeds the "
            f"{OVERHEAD_BUDGET:.0%} budget"
        )
        return 1

    best = min(t_cached, t_parallel)
    report = {
        "bench": "policy_sweep_performance",
        "config": {
            "dataset": "mhealth-like",
            "n_windows": n_windows,
            "n_seeds": n_seeds,
            "n_policies": len(policies),
            "workers": args.workers,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "timings_s": {
            "sequential_uncached": round(t_uncached, 3),
            "sequential_cached": round(t_cached, 3),
            f"parallel_cached_x{args.workers}": round(t_parallel, 3),
            "sequential_cached_traced": round(t_traced, 3),
        },
        "speedup": {
            "cached_vs_uncached": round(t_uncached / t_cached, 2),
            "parallel_vs_uncached": round(t_uncached / t_parallel, 2),
            "best_vs_uncached": round(t_uncached / best, 2),
        },
        "tracing": {
            "overhead_fraction": round(overhead, 4),
            "budget_fraction": OVERHEAD_BUDGET,
            "trace_events": len(obs.tracer.events),
        },
        "records_identical": identical,
    }
    print(json.dumps({**report["speedup"], **report["tracing"]}, indent=2))

    output = args.output
    if output is None and not args.smoke:
        output = DEFAULT_OUTPUT
    if output:
        write_stamped_json(output, report, wall_time_s=total_clock.elapsed_s)
        print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
