"""A from-scratch numpy neural-network library.

The paper trains three small per-location CNNs with Keras; this package
provides everything needed to do the same offline: layers with exact
analytic gradients, losses, optimizers, a trainer, metrics, per-layer
energy modelling (MCU-class cost constants) and the energy-aware channel
pruning used to build the paper's Baseline-2 models.

Typical use::

    from repro.nn import build_har_cnn, Trainer, Adam, CrossEntropyLoss

    model = build_har_cnn(n_channels=6, window=128, n_classes=6, seed=0)
    trainer = Trainer(model, CrossEntropyLoss(), Adam(learning_rate=1e-3))
    history = trainer.fit(X_train, y_train, epochs=30, batch_size=32, seed=1)
"""

from repro.nn.layers import (
    BatchNorm1D,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1D,
    Layer,
    MaxPool1D,
    ReLU,
)
from repro.nn.losses import CrossEntropyLoss
from repro.nn.metrics import accuracy, confusion_matrix, macro_f1, per_class_accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import SGD, Adam
from repro.nn.training import Trainer, TrainingHistory
from repro.nn.energy_model import EnergyCostModel, LayerEnergy, estimate_inference_energy
from repro.nn.pruning import EnergyAwarePruner, PruningResult
from repro.nn.architectures import build_har_cnn, har_architecture_for
from repro.nn.serialization import load_model_weights, save_model_weights

__all__ = [
    "Layer",
    "Conv1D",
    "Dense",
    "MaxPool1D",
    "GlobalAvgPool1D",
    "ReLU",
    "BatchNorm1D",
    "Dropout",
    "Flatten",
    "CrossEntropyLoss",
    "SGD",
    "Adam",
    "Sequential",
    "Trainer",
    "TrainingHistory",
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "macro_f1",
    "EnergyCostModel",
    "LayerEnergy",
    "estimate_inference_energy",
    "EnergyAwarePruner",
    "PruningResult",
    "build_har_cnn",
    "har_architecture_for",
    "save_model_weights",
    "load_model_weights",
]
