"""Cross-process file locking for the artifact store.

One :class:`FileLock` guards one store entry (or the store-wide GC
scan).  The primary implementation is ``fcntl.flock`` — advisory, but
released automatically by the kernel when the holding process dies, so a
crashed sweep worker can never wedge the store.  On platforms without
``fcntl`` (Windows) an ``O_EXCL`` lockfile loop is used instead, with a
stale-lock age breaker since nothing reaps those on process death.

Locks are held only around metadata transitions (rename-into-place,
eviction, GC deletion); payload writes happen in a private temp
directory first, so the critical sections are microseconds long.
"""

from __future__ import annotations

import logging
import os
import time
from typing import Optional

from repro.errors import StoreError

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - exercised only on Windows
    fcntl = None

logger = logging.getLogger(__name__)

#: An O_EXCL lockfile older than this is assumed to belong to a dead
#: process and is broken (the fcntl path never needs this).
STALE_LOCK_S = 300.0

#: Overrides the default lock-acquisition timeout (seconds, > 0).
#: Useful when many chaos-restarted workers hammer one store, or to
#: fail fast in tests.
ENV_LOCK_TIMEOUT = "REPRO_STORE_LOCK_TIMEOUT"

DEFAULT_TIMEOUT_S = 60.0


def default_lock_timeout_s() -> float:
    """The configured lock timeout: ``REPRO_STORE_LOCK_TIMEOUT`` or 60s."""
    raw = os.environ.get(ENV_LOCK_TIMEOUT)
    if raw is None or not raw.strip():
        return DEFAULT_TIMEOUT_S
    try:
        timeout_s = float(raw)
    except ValueError:
        raise StoreError(
            f"{ENV_LOCK_TIMEOUT}={raw!r} is not a number (want seconds, e.g. 30)"
        ) from None
    if timeout_s <= 0:
        raise StoreError(
            f"{ENV_LOCK_TIMEOUT}={raw!r} must be > 0 seconds"
        )
    return timeout_s


class FileLock:
    """Blocking-with-timeout exclusive lock on ``path``.

    Use as a context manager::

        with FileLock(os.path.join(locks_dir, key + ".lock")):
            ...rename/delete the entry...

    Re-entry from the same process is a programming error and raises
    :class:`~repro.errors.StoreError` (the store never self-nests).
    """

    def __init__(
        self,
        path: str,
        *,
        timeout_s: Optional[float] = None,
        poll_s: float = 0.02,
    ) -> None:
        self.path = path
        self.timeout_s = float(
            timeout_s if timeout_s is not None else default_lock_timeout_s()
        )
        self.poll_s = float(poll_s)
        self._fd: Optional[int] = None
        self._exclusive_created = False

    # ------------------------------------------------------------------

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._fd is not None or self._exclusive_created

    def acquire(self) -> None:
        """Take the lock, waiting up to ``timeout_s``."""
        if self.held:
            raise StoreError(f"lock {self.path} acquired twice by the same holder")
        os.makedirs(os.path.dirname(os.path.abspath(self.path)), exist_ok=True)
        deadline = time.monotonic() + self.timeout_s
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except OSError:
                    if time.monotonic() >= deadline:
                        os.close(fd)
                        raise StoreError(self._timeout_message()) from None
                    time.sleep(self.poll_s)
        else:  # pragma: no cover - Windows fallback
            while True:
                try:
                    fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                    os.write(fd, str(os.getpid()).encode("ascii"))
                    os.close(fd)
                    self._exclusive_created = True
                    return
                except FileExistsError:
                    self._break_stale()
                    if time.monotonic() >= deadline:
                        raise StoreError(self._timeout_message()) from None
                    time.sleep(self.poll_s)

    def release(self) -> None:
        """Drop the lock (no-op when not held)."""
        if self._fd is not None:
            fd, self._fd = self._fd, None
            try:
                fcntl.flock(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)
            # The lockfile itself is left in place: removing it would
            # race a waiter that already opened it.
        elif self._exclusive_created:  # pragma: no cover - Windows fallback
            self._exclusive_created = False
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def _timeout_message(self) -> str:
        return (
            f"timed out after {self.timeout_s:g}s waiting for lock "
            f"{self.path}; another process holds it (or held it and died "
            f"without the kernel releasing it — see the lockfile).  Raise "
            f"{ENV_LOCK_TIMEOUT} to wait longer."
        )

    def _break_stale(self) -> None:  # pragma: no cover - Windows fallback
        try:
            age = time.time() - os.path.getmtime(self.path)
        except OSError:
            return
        if age > STALE_LOCK_S:
            logger.warning("breaking stale lock %s (age %.0fs)", self.path, age)
            try:
                os.unlink(self.path)
            except OSError:
                pass

    # ------------------------------------------------------------------

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()
