"""Tests for result containers."""

import pytest

from repro.datasets.activities import Activity
from repro.errors import SimulationError
from repro.sim.results import CompletionBreakdown, ExperimentResult, SlotRecord

ACTIVITIES = [Activity.WALKING, Activity.RUNNING]


def record(slot, true, pred, active=(0,), completions=1, attempts=1):
    return SlotRecord(
        slot_index=slot,
        true_label=true,
        predicted_label=pred,
        active_nodes=tuple(active),
        completions=completions,
        attempts=attempts,
    )


def result_with(records):
    result = ExperimentResult(policy_name="test", activities=ACTIVITIES)
    result.records = records
    return result


class TestSlotRecord:
    def test_correct(self):
        assert record(0, 1, 1).correct
        assert not record(0, 1, 0).correct
        assert not record(0, 1, None).correct


class TestCompletionBreakdown:
    def test_fractions(self):
        breakdown = CompletionBreakdown(10, 1, 2, 7)
        assert breakdown.all_fraction == 0.1
        assert breakdown.some_fraction == 0.2
        assert breakdown.any_fraction == pytest.approx(0.3)
        assert breakdown.failed_fraction == 0.7

    def test_must_add_up(self):
        with pytest.raises(SimulationError):
            CompletionBreakdown(10, 5, 5, 5)

    def test_empty(self):
        breakdown = CompletionBreakdown(0, 0, 0, 0)
        assert breakdown.all_fraction == 0.0


class TestExperimentResult:
    def test_overall_accuracy(self):
        result = result_with([record(0, 0, 0), record(1, 1, 0), record(2, 1, None)])
        assert result.overall_accuracy == pytest.approx(1 / 3)

    def test_per_activity_accuracy(self):
        result = result_with([record(0, 0, 0), record(1, 0, 1), record(2, 1, 1)])
        per = result.per_activity_accuracy()
        assert per[Activity.WALKING] == 0.5
        assert per[Activity.RUNNING] == 1.0

    def test_event_accuracy_ignores_skipped_slots(self):
        records = [
            record(0, 0, 0, completions=1),
            record(1, 0, 1, completions=0, attempts=1),  # failed: not an event
            record(2, 1, 0, completions=0, attempts=0),  # no-op: not an event
        ]
        result = result_with(records)
        assert result.n_events == 1
        assert result.event_accuracy == 1.0

    def test_event_accuracy_empty(self):
        result = result_with([record(0, 0, 0, completions=0, attempts=0)])
        assert result.event_accuracy == 0.0

    def test_per_activity_event_accuracy(self):
        records = [record(0, 0, 0), record(1, 1, 0)]
        per = result_with(records).per_activity_event_accuracy()
        assert per[Activity.WALKING] == 1.0
        assert per[Activity.RUNNING] == 0.0

    def test_completion_breakdown_excludes_noops(self):
        records = [
            record(0, 0, 0, active=(0, 1), completions=2, attempts=2),
            record(1, 0, 0, active=(0, 1), completions=1, attempts=2),
            record(2, 0, 0, active=(0,), completions=0, attempts=1),
            record(3, 0, 0, active=(), completions=0, attempts=0),
        ]
        breakdown = result_with(records).completion_breakdown()
        assert breakdown.n_slots == 3
        assert breakdown.slots_all_completed == 1
        assert breakdown.slots_some_completed == 1
        assert breakdown.slots_none_completed == 1

    def test_completion_rate(self):
        result = result_with(
            [record(0, 0, 0, completions=1, attempts=2)]
        )
        assert result.completion_rate == 0.5

    def test_labels_arrays(self):
        result = result_with([record(0, 0, None), record(1, 1, 0)])
        assert list(result.true_labels()) == [0, 1]
        assert list(result.predicted_labels()) == [-1, 0]

    def test_summary_renders(self):
        result = result_with([record(0, 0, 0)])
        text = result.summary()
        assert "test" in text
        assert "Walking" in text

    def test_empty_accuracy_raises(self):
        with pytest.raises(SimulationError):
            _ = result_with([]).overall_accuracy
