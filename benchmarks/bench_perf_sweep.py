"""Benchmark the sweep performance layer (prediction cache + workers).

Times the paper policy grid three ways on a standard MHEALTH-like
experiment and writes the machine-readable comparison to
``benchmarks/results/BENCH_sweep.json``:

1. sequential, cache off — every run rebuilds its own material
   (timeline, windows, batched softmax) from scratch;
2. sequential, cache on — one material per seed shared by all
   policies of the grid;
3. parallel, cache on — the same cached sweep fanned out over a
   process pool.

All three must produce byte-identical per-slot records; the script
exits nonzero if they diverge, which is what the CI smoke step checks
(``--smoke`` shrinks the grid/horizon so it finishes in seconds and
leaves the committed JSON untouched unless ``--output`` is given).

Run with ``PYTHONPATH=src python benchmarks/bench_perf_sweep.py``.
Deliberately a standalone script, not a pytest bench: it measures
wall-clock ratios and must control its own repetition and output.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.sim.experiment import HARExperiment, SimulationConfig
from repro.sim.sweep import PolicySweep, paper_policy_grid

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "results", "BENCH_sweep.json")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny grid + short horizon; verify identity only, skip the JSON",
    )
    parser.add_argument("--seeds", type=int, default=4, help="seeds per sweep")
    parser.add_argument("--workers", type=int, default=4, help="parallel pool size")
    parser.add_argument(
        "--n-windows", type=int, default=300, help="slots per run (one window each)"
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"JSON destination (default {DEFAULT_OUTPUT}; never written in --smoke "
        "mode unless given explicitly)",
    )
    return parser.parse_args(argv)


def results_identical(a, b):
    """Byte-identity of two SweepResults over the whole grid."""
    if set(a.policies) != set(b.policies):
        return False
    for name in a.policies:
        lhs, rhs = a.policy(name), b.policy(name)
        if lhs.records != rhs.records:
            return False
        if lhs.node_stats != rhs.node_stats:
            return False
        if lhs.comm_energy_j != rhs.comm_energy_j:
            return False
    return True


def timed_sweep(experiment, policies, *, n_seeds, seed, cache, workers):
    sweep = PolicySweep(
        experiment,
        n_seeds=n_seeds,
        include_baselines=False,
        use_prediction_cache=cache,
    )
    start = time.perf_counter()
    result = sweep.run(policies, seed=seed, workers=workers)
    return time.perf_counter() - start, result


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.smoke:
        n_windows, n_seeds, policies = 40, 2, paper_policy_grid(rr_lengths=(3,))
    else:
        n_windows, n_seeds = args.n_windows, args.seeds
        policies = paper_policy_grid()

    print(
        f"building experiment (n_windows={n_windows}, grid={len(policies)} policies, "
        f"seeds={n_seeds}, workers={args.workers}) ...",
        flush=True,
    )
    experiment = HARExperiment.standard_mhealth(
        seed=7, config=SimulationConfig(n_windows=n_windows)
    )

    run = lambda **kw: timed_sweep(  # noqa: E731
        experiment, policies, n_seeds=n_seeds, seed=11, **kw
    )
    t_uncached, r_uncached = run(cache=False, workers=1)
    print(f"sequential uncached : {t_uncached:8.2f} s", flush=True)
    t_cached, r_cached = run(cache=True, workers=1)
    print(f"sequential cached   : {t_cached:8.2f} s", flush=True)
    t_parallel, r_parallel = run(cache=True, workers=args.workers)
    print(f"parallel cached x{args.workers}  : {t_parallel:8.2f} s", flush=True)

    identical = results_identical(r_uncached, r_cached) and results_identical(
        r_uncached, r_parallel
    )
    if not identical:
        print("FAIL: cached/parallel sweeps diverged from the uncached baseline")
        return 1
    print("per-slot records byte-identical across all three modes")

    best = min(t_cached, t_parallel)
    report = {
        "bench": "policy_sweep_performance",
        "config": {
            "dataset": "mhealth-like",
            "n_windows": n_windows,
            "n_seeds": n_seeds,
            "n_policies": len(policies),
            "workers": args.workers,
            "cpu_count": os.cpu_count(),
            "smoke": args.smoke,
        },
        "timings_s": {
            "sequential_uncached": round(t_uncached, 3),
            "sequential_cached": round(t_cached, 3),
            f"parallel_cached_x{args.workers}": round(t_parallel, 3),
        },
        "speedup": {
            "cached_vs_uncached": round(t_uncached / t_cached, 2),
            "parallel_vs_uncached": round(t_uncached / t_parallel, 2),
            "best_vs_uncached": round(t_uncached / best, 2),
        },
        "records_identical": identical,
    }
    print(json.dumps(report["speedup"], indent=2))

    output = args.output
    if output is None and not args.smoke:
        output = DEFAULT_OUTPUT
    if output:
        os.makedirs(os.path.dirname(os.path.abspath(output)), exist_ok=True)
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
