"""Capacitor energy buffer."""

from __future__ import annotations

from repro.errors import EnergyModelError
from repro.utils.validation import check_non_negative, check_positive


class Capacitor:
    """A small supercapacitor storing harvested energy.

    Tracks stored joules with a hard capacity ceiling (excess harvest is
    shed) and constant leakage power.

    Parameters
    ----------
    capacity_j:
        Maximum stored energy.
    initial_j:
        Energy at t=0 (clamped to capacity).
    leakage_w:
        Constant self-discharge power.
    """

    def __init__(
        self,
        capacity_j: float = 1.5e-3,
        initial_j: float = 0.0,
        leakage_w: float = 1e-6,
    ) -> None:
        self.capacity_j = check_positive("capacity_j", capacity_j)
        check_non_negative("initial_j", initial_j)
        self.leakage_w = check_non_negative("leakage_w", leakage_w)
        self._stored_j = min(float(initial_j), self.capacity_j)
        self._shed_j = 0.0  # energy lost to the ceiling
        self._leaked_j = 0.0

    # ------------------------------------------------------------------

    @property
    def stored_j(self) -> float:
        """Currently stored energy."""
        return self._stored_j

    @property
    def shed_j(self) -> float:
        """Cumulative harvest lost because the capacitor was full."""
        return self._shed_j

    @property
    def leaked_j(self) -> float:
        """Cumulative self-discharge loss."""
        return self._leaked_j

    @property
    def headroom_j(self) -> float:
        """Remaining storage room."""
        return self.capacity_j - self._stored_j

    def fill_fraction(self) -> float:
        """Stored energy as a fraction of capacity."""
        return self._stored_j / self.capacity_j

    # ------------------------------------------------------------------

    def deposit(self, energy_j: float) -> float:
        """Add harvested energy; returns what actually fit."""
        if energy_j < 0:
            raise EnergyModelError(f"cannot deposit negative energy ({energy_j})")
        accepted = min(energy_j, self.headroom_j)
        self._stored_j += accepted
        self._shed_j += energy_j - accepted
        return accepted

    def draw(self, energy_j: float) -> float:
        """Withdraw up to ``energy_j``; returns what was available."""
        if energy_j < 0:
            raise EnergyModelError(f"cannot draw negative energy ({energy_j})")
        granted = min(energy_j, self._stored_j)
        self._stored_j -= granted
        return granted

    def can_supply(self, energy_j: float) -> bool:
        """Whether a draw of ``energy_j`` would be fully satisfied."""
        return self._stored_j >= energy_j

    def leak(self, duration_s: float) -> float:
        """Apply self-discharge over ``duration_s``; returns joules lost."""
        if duration_s < 0:
            raise EnergyModelError(f"duration_s must be >= 0, got {duration_s}")
        lost = min(self.leakage_w * duration_s, self._stored_j)
        self._stored_j -= lost
        self._leaked_j += lost
        return lost

    def reset(self, initial_j: float = 0.0) -> None:
        """Restore the t=0 state with ``initial_j`` stored."""
        check_non_negative("initial_j", initial_j)
        self._stored_j = min(float(initial_j), self.capacity_j)
        self._shed_j = 0.0
        self._leaked_j = 0.0
