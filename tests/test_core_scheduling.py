"""Tests for naive, ER-r and activity-aware scheduling."""

import pytest

from repro.core.scheduling import (
    ActivityAwareScheduler,
    ExtendedRoundRobin,
    NaiveAllOn,
    RankTable,
    SchedulingContext,
)
from repro.datasets.body import BodyLocation
from repro.errors import SchedulingError
from repro.wsn.node import InferenceOutcome

NODES = [0, 1, 2]


def make_rank_table():
    # class 0: node 2 best; class 1: node 0 best; class 2: node 1 best.
    return RankTable({0: [2, 0, 1], 1: [0, 2, 1], 2: [1, 0, 2]})


def context(ready=None, anticipated=None):
    ready = ready if ready is not None else {n: True for n in NODES}
    return SchedulingContext(
        node_energy_j={n: 1.0 for n in NODES},
        node_ready=ready,
        anticipated_label=anticipated,
    )


def completed_outcome(node_id, label, slot):
    import numpy as np

    probs = np.full(3, 0.05)
    probs[label] = 0.9
    return InferenceOutcome(
        node_id, BodyLocation.CHEST, slot, slot, True,
        predicted_label=label, probabilities=probs, confidence=0.1,
    )


class TestNaiveAllOn:
    def test_all_nodes_every_slot(self):
        policy = NaiveAllOn(NODES)
        for slot in range(5):
            assert policy.active_nodes(slot, context()) == NODES

    def test_empty_rejected(self):
        with pytest.raises(SchedulingError):
            NaiveAllOn([])


class TestExtendedRoundRobin:
    def test_rr3_cycle(self):
        policy = ExtendedRoundRobin.from_rr_length(NODES, 3)
        assert policy.cycle == [0, 1, 2]
        assert policy.name == "RR3"

    def test_rr12_cycle_structure(self):
        policy = ExtendedRoundRobin.from_rr_length(NODES, 12)
        assert policy.cycle_length == 12
        assert policy.noops_per_node == 3
        # Fig. 3: node, 3 no-ops, node, 3 no-ops, ...
        assert policy.cycle[0] == 0
        assert policy.cycle[1:4] == [None, None, None]
        assert policy.cycle[4] == 1

    def test_slot_owner_wraps(self):
        policy = ExtendedRoundRobin.from_rr_length(NODES, 6)
        assert policy.slot_owner(0) == 0
        assert policy.slot_owner(6) == 0
        assert policy.slot_owner(8) == 1

    def test_active_nodes_on_noop(self):
        policy = ExtendedRoundRobin.from_rr_length(NODES, 6)
        assert policy.active_nodes(1, context()) == []
        assert policy.active_nodes(2, context()) == [1]

    def test_is_compute_slot(self):
        policy = ExtendedRoundRobin.from_rr_length(NODES, 9)
        compute_slots = [s for s in range(9) if policy.is_compute_slot(s)]
        assert compute_slots == [0, 3, 6]

    def test_describe_mentions_noops(self):
        text = ExtendedRoundRobin.from_rr_length(NODES, 6).describe()
        assert "No Op" in text

    @pytest.mark.parametrize("length", [4, 7, 2, 0])
    def test_invalid_lengths(self, length):
        with pytest.raises(SchedulingError):
            ExtendedRoundRobin.from_rr_length(NODES, length)

    def test_negative_slot(self):
        with pytest.raises(SchedulingError):
            ExtendedRoundRobin(NODES).slot_owner(-1)


class TestRankTable:
    def test_best_node(self):
        table = make_rank_table()
        assert table.best_node(0) == 2
        assert table.best_node(1) == 0

    def test_from_accuracy_orders_desc(self):
        table = RankTable.from_accuracy(
            {0: {0: 0.5, 1: 0.9, 2: 0.7}, 1: {0: 0.9, 1: 0.2, 2: 0.7}}
        )
        assert table.ranked_nodes(0) == [1, 2, 0]
        assert table.ranked_nodes(1) == [0, 2, 1]

    def test_from_accuracy_tie_breaks_low_id(self):
        table = RankTable.from_accuracy({0: {1: 0.5, 0: 0.5, 2: 0.4}})
        assert table.ranked_nodes(0) == [0, 1, 2]

    def test_rank_of(self):
        table = make_rank_table()
        assert table.rank_of(0, 2) == 0
        assert table.rank_of(0, 1) == 2

    def test_as_array_is_small_ints(self):
        array = make_rank_table().as_array()
        assert array.shape == (3, 3)
        assert array.dtype.kind == "i"
        assert array.dtype.itemsize == 1  # the paper stores ranks, not floats

    def test_unknown_class(self):
        with pytest.raises(SchedulingError):
            make_rank_table().ranked_nodes(9)

    def test_inconsistent_node_sets_rejected(self):
        with pytest.raises(SchedulingError):
            RankTable({0: [0, 1], 1: [0, 2]})

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(SchedulingError):
            RankTable({0: [0, 0]})


class TestActivityAwareScheduler:
    def make(self, rr_length=12, cooldown=None):
        base = ExtendedRoundRobin.from_rr_length(NODES, rr_length)
        return ActivityAwareScheduler(base, make_rank_table(), cooldown_slots=cooldown)

    def test_falls_back_to_rr_before_first_classification(self):
        scheduler = self.make()
        assert scheduler.active_nodes(0, context()) == [0]

    def test_respects_noop_cadence(self):
        scheduler = self.make(rr_length=12)
        assert scheduler.active_nodes(1, context(anticipated=0)) == []

    def test_picks_best_ready_sensor(self):
        scheduler = self.make(cooldown=0)
        assert scheduler.active_nodes(0, context(anticipated=0)) == [2]

    def test_hands_off_when_best_not_ready(self):
        scheduler = self.make(cooldown=0)
        ready = {0: True, 1: True, 2: False}
        assert scheduler.active_nodes(0, context(ready=ready, anticipated=0)) == [0]

    def test_falls_back_to_best_when_none_ready(self):
        scheduler = self.make(cooldown=0)
        ready = {n: False for n in NODES}
        assert scheduler.active_nodes(0, context(ready=ready, anticipated=0)) == [2]

    def test_cooldown_rotates_sensors(self):
        scheduler = self.make(rr_length=3, cooldown=2)
        first = scheduler.active_nodes(0, context(anticipated=0))
        second = scheduler.active_nodes(1, context(anticipated=0))
        assert first == [2]
        assert second != first  # best sensor is cooling down

    def test_observe_updates_anticipation(self):
        scheduler = self.make(cooldown=0)
        scheduler.observe(0, [completed_outcome(0, label=1, slot=0)], final_label=None)
        assert scheduler.anticipated_label == 1
        # Internal anticipation is used when the context carries none.
        assert scheduler.active_nodes(12, context(anticipated=None)) == [0]

    def test_final_label_takes_precedence(self):
        scheduler = self.make(cooldown=0)
        scheduler.observe(0, [completed_outcome(0, label=1, slot=0)], final_label=2)
        assert scheduler.anticipated_label == 2

    def test_reset_clears_state(self):
        scheduler = self.make()
        scheduler.observe(0, [], final_label=1)
        scheduler.reset()
        assert scheduler.anticipated_label is None

    def test_mismatched_nodes_rejected(self):
        base = ExtendedRoundRobin.from_rr_length([5, 6, 7], 3)
        with pytest.raises(SchedulingError):
            ActivityAwareScheduler(base, make_rank_table())

    def test_cooldown_for_recall(self):
        base = ExtendedRoundRobin.from_rr_length(NODES, 12)
        assert ActivityAwareScheduler.cooldown_for_recall(base) == 9

    def test_name(self):
        assert self.make(rr_length=6).name == "RR6+AAS"
