"""Layer protocol.

Shapes exclude the batch dimension: a 6-channel, 128-sample IMU window is
``(6, 128)``, and a dense feature vector of width 64 is ``(64,)``.
Layers are built lazily — :meth:`Layer.build` runs on first use (or when
a :class:`~repro.nn.model.Sequential` is built) and returns the output
shape, letting models infer shapes end to end.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import ModelError

Shape = Tuple[int, ...]


class Layer(ABC):
    """Base class for all layers.

    Subclasses implement :meth:`build`, :meth:`forward` and
    :meth:`backward`; parameterized layers also expose ``params`` and
    ``grads`` dictionaries with matching keys, which optimizers update
    in place.
    """

    def __init__(self, name: Optional[str] = None) -> None:
        self.name = name or type(self).__name__
        self.input_shape: Optional[Shape] = None
        self.output_shape: Optional[Shape] = None

    # ------------------------------------------------------------------

    @property
    def built(self) -> bool:
        """Whether :meth:`build` has run."""
        return self.output_shape is not None

    def build(self, input_shape: Shape) -> Shape:
        """Allocate parameters for ``input_shape``; return output shape."""
        self.input_shape = tuple(input_shape)
        self.output_shape = self._build(self.input_shape)
        return self.output_shape

    @abstractmethod
    def _build(self, input_shape: Shape) -> Shape:
        """Subclass hook: allocate parameters, return the output shape."""

    # ------------------------------------------------------------------

    @abstractmethod
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for a batch ``x``.

        When ``training`` is true the layer must cache whatever its
        :meth:`backward` needs.
        """

    @abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Given dL/d(output), accumulate parameter grads and return
        dL/d(input).  Only valid after a ``forward(..., training=True)``."""

    # ------------------------------------------------------------------

    @property
    def params(self) -> Dict[str, np.ndarray]:
        """Trainable parameters (empty for stateless layers)."""
        return {}

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        """Gradients matching :attr:`params` keys."""
        return {}

    def n_params(self) -> int:
        """Total trainable scalar count."""
        return sum(int(np.prod(p.shape)) for p in self.params.values())

    # ------------------------------------------------------------------

    def _require_built(self) -> None:
        if not self.built:
            raise ModelError(f"layer {self.name!r} used before build()")

    def _check_input(self, x: np.ndarray) -> None:
        self._require_built()
        if tuple(x.shape[1:]) != self.input_shape:
            raise ModelError(
                f"layer {self.name!r} expected input shape {self.input_shape}, "
                f"got {tuple(x.shape[1:])}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(name={self.name!r}, "
            f"in={self.input_shape}, out={self.output_shape})"
        )
