"""Shared utilities: deterministic RNG management, argument validation,
moving statistics, and plain-text rendering of tables and bar charts."""

from repro.utils.rng import SeedSequenceFactory, as_generator, spawn_generators
from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability_vector,
)
from repro.utils.stats import ExponentialMovingAverage, RunningMean, confidence_from_softmax
from repro.utils.text import format_table, horizontal_bar_chart, format_percent

__all__ = [
    "SeedSequenceFactory",
    "as_generator",
    "spawn_generators",
    "check_fraction",
    "check_in_choices",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "check_probability_vector",
    "ExponentialMovingAverage",
    "RunningMean",
    "confidence_from_softmax",
    "format_table",
    "horizontal_bar_chart",
    "format_percent",
]
