"""Shared fixtures.

Heavy artifacts (trained bundles) are session-scoped and deliberately
tiny: a few training windows and epochs are enough to exercise every
code path while keeping the whole suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.mhealth import make_mhealth
from repro.sim.experiment import HARExperiment, SimulationConfig
from repro.sim.training import TrainedSensorBundle, TrainingConfig


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_dataset():
    """A small but complete MHEALTH-like dataset."""
    return make_mhealth(
        seed=11,
        train_windows_per_activity=14,
        val_windows_per_activity=8,
        test_windows_per_activity=8,
        n_train_subjects=3,
        n_eval_subjects=1,
    )


@pytest.fixture(scope="session")
def tiny_bundle(tiny_dataset):
    """Trained per-location models + tables (fast training recipe)."""
    config = TrainingConfig(
        epochs=6,
        batch_size=16,
        early_stopping_patience=6,
        finetune_epochs=1,
        final_finetune_epochs=2,
        finetune_every=6,
    )
    return TrainedSensorBundle.train(
        tiny_dataset, budget_j=160e-6, seed=5, config=config
    )


@pytest.fixture(scope="session")
def tiny_experiment(tiny_dataset, tiny_bundle):
    """A ready-to-run EH-WSN experiment with a short horizon."""
    return HARExperiment(
        tiny_dataset,
        tiny_bundle,
        config=SimulationConfig(n_windows=60),
        seed=3,
    )
