"""Reproduction of *Origin* (DATE 2021).

Origin enables DNN-based human activity recognition (HAR) on a body-area
network of energy-harvesting sensor nodes by combining:

* extended round-robin scheduling (``RR3`` .. ``RR12``),
* activity-aware sensor selection (AAS) via a per-activity rank table,
* recall of each sensor's most recent classification (AASR), and
* an adaptive confidence matrix for weighted majority voting.

The package is organized bottom-up:

``repro.datasets``
    Synthetic MHEALTH/PAMAP2-like multi-position IMU datasets with
    temporal activity continuity and per-subject variation.
``repro.nn``
    A from-scratch numpy neural-network library (1-D CNNs, training,
    per-layer energy modelling and energy-aware pruning).
``repro.energy``
    Energy-harvesting substrate: WiFi RF power traces, capacitor storage
    and a non-volatile-processor intermittent compute model.
``repro.wsn``
    Body-area-network substrate: sensor nodes, host device, radio cost
    model and a discrete-event simulator.
``repro.core``
    The paper's contribution: scheduling policies, ensemble methods, the
    confidence matrix, and the Origin policy plus both paper baselines.
``repro.faults``
    Composable fault injection: node death, brownouts, lossy/corrupting
    links, harvester shadowing and host restarts, with
    graceful-degradation accounting.
``repro.sim``
    End-to-end experiment harnesses reproducing every figure and table.
``repro.store``
    Content-addressed artifact store: trained bundles are published on
    first build and rehydrated byte-identically in later processes
    (``python -m repro.store`` manages the cache).
``repro.fleet``
    Population-scale cohort simulation: reproducible heterogeneous
    user sampling, kernel mega-batching, sharded supervised execution
    and exact order-invariant streaming aggregation
    (``python -m repro.fleet run`` for the CLI).

Quickstart::

    from repro.sim import HARExperiment
    from repro.core import OriginPolicy

    exp = HARExperiment.standard_mhealth(seed=7)
    result = exp.run(policy=OriginPolicy.with_rr(12))
    print(result.overall_accuracy)
"""

from repro.version import __version__

__all__ = ["__version__"]
