"""Flatten layer: (B, C, L) -> (B, C*L), channel-major.

Channel-major ordering matters to the pruner: the features of conv
channel ``c`` occupy the contiguous slice ``[c*L, (c+1)*L)`` of the flat
vector, so removing a channel removes a contiguous block of dense rows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.layers.base import Layer, Shape


class Flatten(Layer):
    """Collapse all non-batch dimensions into one."""

    def __init__(self, name: Optional[str] = None) -> None:
        super().__init__(name)
        self._cached_shape: Optional[tuple] = None

    def _build(self, input_shape: Shape) -> Shape:
        size = 1
        for dim in input_shape:
            size *= dim
        return (size,)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_input(x)
        if training:
            self._cached_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_shape is None:
            raise ModelError(f"backward() before forward(training=True) in {self.name!r}")
        return grad_output.reshape(self._cached_shape)
