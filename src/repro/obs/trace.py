"""Structured tracing: typed span/event records with JSONL export.

A :class:`Tracer` collects :class:`TraceEvent` records as the simulation
runs — which node the scheduler picked, each NVP burst's charge/progress
summary, when a result message was dropped, when a recalled vote went
stale — and serializes them to a schema-versioned JSONL file that
``python -m repro.obs.summarize`` (or any external tool) can replay.

The default everywhere is the :class:`NullTracer` singleton
(:data:`NULL_TRACER`): ``enabled`` is ``False``, ``emit`` is a no-op,
and every instrumentation site in the hot path guards on ``enabled``
before even building the payload, so untraced runs do no extra work and
stay bit-identical to the pre-instrumentation code.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, NamedTuple, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.schema import (
    HEADER_KIND,
    SCHEMA_CHANGELOG,
    TRACE_SCHEMA_VERSION,
    validate_event,
)


class TraceEvent(NamedTuple):
    """One typed trace record.

    ``seq`` is the tracer-assigned emission index (total order within
    one trace); ``slot`` / ``node_id`` are ``None`` for events that are
    not slot- or node-scoped (e.g. run lifecycle).  A NamedTuple rather
    than a dataclass: emission is on the simulation hot path, and tuple
    construction is ~3x cheaper than a frozen dataclass's ``__init__``.
    """

    seq: int
    kind: str
    slot: Optional[int]
    node_id: Optional[int]
    payload: Dict[str, Any]

    def to_json(self) -> Dict[str, Any]:
        """Plain-dict form used by the JSONL export."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "slot": self.slot,
            "node": self.node_id,
            "payload": self.payload,
        }

    @classmethod
    def from_json(cls, record: Dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=int(record["seq"]),
            kind=str(record["kind"]),
            slot=record.get("slot"),
            node_id=record.get("node"),
            payload=dict(record.get("payload") or {}),
        )


class Tracer:
    """Collects typed events in emission order.

    Parameters
    ----------
    validate:
        Check every emit against the registered schema
        (:data:`repro.obs.schema.EVENT_KINDS`) at emission time.  Off by
        default to keep the hot path within the tracing overhead budget;
        schema conformance is still enforced at the serialization
        boundary — :func:`write_trace` and :func:`read_trace` validate
        every event — so a malformed emit cannot survive a round trip.
        Turn on in tests or when debugging a new instrumentation site to
        get the error at the source instead of at export.
    """

    enabled = True

    def __init__(self, *, validate: bool = False) -> None:
        # Raw (kind, slot, node_id, payload) tuples: emission happens a
        # few times per simulated slot, so the hot path appends a bare
        # tuple and the seq number is simply the list index, assigned
        # when ``events`` materializes the typed records.
        self._records: List[Tuple[str, Optional[int], Optional[int], Dict[str, Any]]] = []
        self.validate = bool(validate)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def events(self) -> List[TraceEvent]:
        """The typed records in emission order (materialized on demand)."""
        return [
            TraceEvent(seq, kind, slot, node_id, payload)
            for seq, (kind, slot, node_id, payload) in enumerate(self._records)
        ]

    def emit(
        self,
        kind: str,
        *,
        slot: Optional[int] = None,
        node_id: Optional[int] = None,
        **payload: Any,
    ) -> None:
        """Record one event (payload keys become the record's payload)."""
        if self.validate:
            validate_event(kind, payload)
        self._records.append((kind, slot, node_id, payload))

    def append(
        self,
        kind: str,
        slot: Optional[int],
        node_id: Optional[int],
        payload: Dict[str, Any],
    ) -> None:
        """Positional hot-path variant of :meth:`emit`.

        Skips keyword-argument parsing and per-emit validation; the
        caller supplies the payload dict directly.  Used by the per-slot
        instrumentation sites — schema conformance is still enforced
        when the trace is written or read.
        """
        self._records.append((kind, slot, node_id, payload))

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append foreign events (e.g. from a worker process), re-sequenced.

        The incoming events keep their relative order but get fresh
        ``seq`` numbers (their position in this tracer), so a parallel
        sweep's per-unit traces merge into one totally ordered trace.
        """
        self._records.extend(
            (event.kind, event.slot, event.node_id, event.payload) for event in events
        )

    def of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, in emission order."""
        return [event for event in self.events if event.kind == kind]

    def clear(self) -> None:
        """Drop every recorded event."""
        self._records.clear()

    # ------------------------------------------------------------------
    # JSONL export
    # ------------------------------------------------------------------

    def write_jsonl(self, path: str, *, meta: Optional[Dict[str, Any]] = None) -> None:
        """Write header + events to ``path`` (one JSON object per line)."""
        write_trace(path, self.events, meta=meta)


class NullTracer(Tracer):
    """The zero-overhead default: records nothing, always disabled."""

    enabled = False

    def __init__(self) -> None:  # no buffers to allocate
        self._records = []
        self.validate = False

    def emit(self, kind: str, **_: Any) -> None:  # noqa: ARG002
        pass

    def append(self, kind: str, slot, node_id, payload) -> None:  # noqa: ARG002
        pass

    def extend(self, events: Iterable[TraceEvent]) -> None:  # noqa: ARG002
        pass


#: Shared no-op tracer; safe to use as a default everywhere.
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# file round-trip
# ---------------------------------------------------------------------------


def write_trace(
    path: str,
    events: Iterable[TraceEvent],
    *,
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a schema-versioned JSONL trace file.

    Every event is validated against the registered schema on the way
    out, so files on disk always conform even when the tracer skipped
    per-emit validation.
    """
    header = {
        "kind": HEADER_KIND,
        "schema_version": TRACE_SCHEMA_VERSION,
        "meta": meta or {},
    }
    with open(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        for event in events:
            validate_event(event.kind, event.payload)
            handle.write(json.dumps(event.to_json()) + "\n")


def read_trace(path: str) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Read a JSONL trace; returns ``(header, events)``.

    Raises :class:`ObservabilityError` when the header is missing or the
    file was written by a schema version this build does not know.
    """
    with open(path) as handle:
        lines = [line for line in (raw.strip() for raw in handle) if line]
    if not lines:
        raise ObservabilityError(f"{path} is empty, not a trace file")
    header = json.loads(lines[0])
    if header.get("kind") != HEADER_KIND:
        raise ObservabilityError(
            f"{path} does not start with a {HEADER_KIND!r} record "
            f"(got {header.get('kind')!r})"
        )
    version = header.get("schema_version")
    if version not in SCHEMA_CHANGELOG:
        raise ObservabilityError(
            f"{path} uses trace schema version {version!r}, but this build "
            f"knows versions {sorted(SCHEMA_CHANGELOG)}"
        )
    events = [TraceEvent.from_json(json.loads(line)) for line in lines[1:]]
    for event in events:
        validate_event(event.kind, event.payload)
    return header, events
