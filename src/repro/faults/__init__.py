"""Composable fault injection for the EH-WSN simulation.

The paper's Discussion claims Origin "poses minimum risk if one of the
sensors fails"; this package makes that claim testable under the fault
conditions real energy-harvesting body-area deployments actually see:

* :class:`NodeDeath` — a node dies permanently at a slot (the original
  ``failures={node_id: slot}`` behaviour, now one model among many);
* :class:`Brownout` — a transient supply collapse: the node goes dark
  for a window of slots, loses its capacitor charge and any in-flight
  inference, then recovers;
* :class:`PacketLoss` — i.i.d. Bernoulli loss of result messages;
* :class:`GilbertElliottLoss` — bursty two-state packet loss;
* :class:`PayloadCorruption` — a delivered message carries the wrong
  class label;
* :class:`HarvesterDropout` — shadowing windows in which a node's
  harvester yields (a fraction of) nothing while the node stays up;
* :class:`HostRestart` — the host reboots and its recall store is wiped.

A :class:`FaultPlan` composes any number of fault models, validates them
at construction (:class:`~repro.errors.FaultError` on nonsense), and is
compiled by :meth:`FaultPlan.compile` into a per-run :class:`FaultEngine`
that the experiment loop queries slot by slot.  An *empty* plan is
guaranteed to reproduce the fault-free run bit for bit.
"""

from repro.faults.models import (
    Brownout,
    FaultModel,
    GilbertElliottLoss,
    HarvesterDropout,
    HostRestart,
    NodeDeath,
    PacketLoss,
    PayloadCorruption,
)
from repro.faults.plan import FaultPlan
from repro.faults.engine import FaultEngine
from repro.faults.stats import FaultStats, LinkStats, RecoveryEvent

__all__ = [
    "FaultModel",
    "NodeDeath",
    "Brownout",
    "PacketLoss",
    "GilbertElliottLoss",
    "PayloadCorruption",
    "HarvesterDropout",
    "HostRestart",
    "FaultPlan",
    "FaultEngine",
    "FaultStats",
    "LinkStats",
    "RecoveryEvent",
]
