"""Ablation D — rank-table sensor selection vs random selection.

DESIGN.md calls out the rank table as AAS's knowledge source.  This
ablation swaps it for a uniformly random (but cadence- and
cooldown-respecting) selector: any gain AAS shows over it is
attributable to knowing which sensor is good at which activity.
"""

from typing import List

import numpy as np
import pytest

from benchmarks.conftest import SEEDS
from repro.core.policies import aas_policy
from repro.core.scheduling.base import SchedulingContext, SchedulingPolicy
from repro.core.scheduling.round_robin import ExtendedRoundRobin
from repro.utils.text import format_table

RR = 12


class RandomSensorScheduler(SchedulingPolicy):
    """ER-r cadence, uniformly random sensor per compute slot."""

    def __init__(self, base: ExtendedRoundRobin, seed: int = 0) -> None:
        self.base = base
        self._rng = np.random.default_rng(seed)
        self.name = f"{base.name}+random"

    def active_nodes(self, slot_index: int, context: SchedulingContext) -> List[int]:
        if not self.base.is_compute_slot(slot_index):
            return []
        return [int(self._rng.choice(self.base.node_ids))]

    def reset(self) -> None:
        self._rng = np.random.default_rng(0)


@pytest.fixture(scope="module")
def selection_results(mhealth_exp):
    # AAS (rank table).
    aas_accs = [
        mhealth_exp.run(
            aas_policy(RR), seed=s, subject=mhealth_exp.dataset.eval_subjects[s % 2]
        ).event_accuracy
        for s in SEEDS
    ]

    # Random selector: substitute the scheduler via a thin PolicySpec
    # stand-in (same aggregation/adaptivity flags as plain AAS).
    spec = aas_policy(RR)

    class RandomSpec:
        name = f"RR{RR} random"
        rr_length = spec.rr_length
        aggregation = spec.aggregation
        adaptive_confidence = spec.adaptive_confidence
        uses_recall = spec.uses_recall
        uses_confidence_matrix = spec.uses_confidence_matrix

        @staticmethod
        def make_scheduler(node_ids, rank_table):
            return RandomSensorScheduler(
                ExtendedRoundRobin.from_rr_length(list(node_ids), RR), seed=1
            )

    random_accs = [
        mhealth_exp.run(
            RandomSpec(), seed=s, subject=mhealth_exp.dataset.eval_subjects[s % 2]
        ).event_accuracy
        for s in SEEDS
    ]
    return float(np.mean(aas_accs)), float(np.mean(random_accs))


def test_ablation_scheduling_render(selection_results, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    aas, random_sel = selection_results
    save_result(
        "ablation_scheduling",
        format_table(
            ["Selector", "Event accuracy (%)"],
            [
                [f"rank table (AAS, RR{RR})", aas * 100],
                [f"uniform random (RR{RR})", random_sel * 100],
                ["delta (pts)", (aas - random_sel) * 100],
            ],
            title="=== Ablation D: sensor selection knowledge ===",
        ),
    )


def test_ablation_rank_table_beats_random(selection_results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    aas, random_sel = selection_results
    assert aas > random_sel - 0.02, (
        f"rank-table selection should not lose to random: {aas} vs {random_sel}"
    )


def test_ablation_scheduling_timing(benchmark, mhealth_exp):
    benchmark.pedantic(
        lambda: mhealth_exp.run(aas_policy(RR), seed=6, n_windows=120),
        rounds=1,
        iterations=1,
    )
