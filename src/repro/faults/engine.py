"""Runtime fault machinery.

A :class:`FaultEngine` is one run's compiled fault plan: it owns the
per-link loss chains (with their own RNG streams, derived from the
experiment's ``"faults"`` stream so fault randomness never perturbs the
simulation's other streams), applies node deaths/brownouts and host
restarts at slot boundaries, and accumulates the degradation accounting
that ends up in :class:`~repro.faults.stats.FaultStats`.

The engine talks to nodes and the host through their public fault
surface only (``power_down``/``power_up``/``restart``), so it layers on
top of :mod:`repro.wsn` without the substrate knowing about plans.
"""

from __future__ import annotations

import logging
from typing import Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.faults.models import (
    Brownout,
    GilbertElliottLoss,
    HarvesterDropout,
    HostRestart,
    NodeDeath,
    PacketLoss,
    PayloadCorruption,
)
from repro.faults.stats import FaultStats, LinkStats, RecoveryEvent
from repro.obs.observer import NULL_OBS, Observability
from repro.utils.rng import spawn_generators
from repro.wsn.comm import Delivery

logger = logging.getLogger(__name__)


class _GilbertElliottState:
    """Per-link two-state loss chain, stepped once per message."""

    def __init__(self, model: GilbertElliottLoss) -> None:
        self.model = model
        self.bad = False

    def message_lost(self, rng: np.random.Generator) -> bool:
        loss = self.model.loss_bad if self.bad else self.model.loss_good
        lost = rng.random() < loss
        flip = self.model.p_bad_to_good if self.bad else self.model.p_good_to_bad
        if rng.random() < flip:
            self.bad = not self.bad
        return lost


class _LinkChannel:
    """Delivery decision pipeline for one node→host link."""

    def __init__(
        self,
        loss_models: Sequence[object],
        corruption_models: Sequence[PayloadCorruption],
        rng: np.random.Generator,
        n_classes: int,
    ) -> None:
        self._rng = rng
        self._n_classes = n_classes
        # Keep plan order; GE models get persistent chain state.
        self._loss: List[object] = [
            _GilbertElliottState(m) if isinstance(m, GilbertElliottLoss) else m
            for m in loss_models
        ]
        self._corrupt = list(corruption_models)

    def __call__(self, slot_index: int, label: int) -> Delivery:
        dropped = False
        for model in self._loss:
            if isinstance(model, _GilbertElliottState):
                # Chains advance on every message so burst timing does
                # not depend on what the other models decided.
                if model.message_lost(self._rng):
                    dropped = True
            elif model.active_at(slot_index) and self._rng.random() < model.rate:
                dropped = True
        if dropped:
            return Delivery(delivered=False, label=None)
        for model in self._corrupt:
            if model.active_at(slot_index) and self._rng.random() < model.rate:
                if self._n_classes > 1:
                    wrong = int(
                        (label + 1 + self._rng.integers(self._n_classes - 1))
                        % self._n_classes
                    )
                    return Delivery(delivered=True, label=wrong, corrupted=True)
        return Delivery(delivered=True, label=label)


class _PendingRecovery:
    """A brownout that ended; waiting for the node's first completion."""

    __slots__ = ("node_id", "start_slot", "end_slot", "recovered_slot")

    def __init__(self, node_id: int, start_slot: int, end_slot: int) -> None:
        self.node_id = node_id
        self.start_slot = start_slot
        self.end_slot = end_slot
        self.recovered_slot: Optional[int] = None

    def freeze(self) -> RecoveryEvent:
        return RecoveryEvent(
            node_id=self.node_id,
            start_slot=self.start_slot,
            end_slot=self.end_slot,
            recovered_slot=self.recovered_slot,
        )


class FaultEngine:
    """One run's live fault state (built by :meth:`FaultPlan.compile`)."""

    def __init__(
        self,
        faults: Sequence[object],
        node_ids: Sequence[int],
        n_slots: int,
        n_classes: int,
        rng: Optional[np.random.Generator],
    ) -> None:
        self._node_ids = list(node_ids)
        self._n_slots = int(n_slots)
        self._deaths: Dict[int, int] = {}
        self._brownouts: Dict[int, List[Brownout]] = {}
        self._dropouts: Dict[int, List[HarvesterDropout]] = {}
        self._restart_slots: set = set()
        loss_by_node: Dict[int, list] = {nid: [] for nid in self._node_ids}
        corrupt_by_node: Dict[int, list] = {nid: [] for nid in self._node_ids}

        for fault in faults:
            if isinstance(fault, NodeDeath):
                current = self._deaths.get(fault.node_id)
                self._deaths[fault.node_id] = (
                    fault.at_slot if current is None else min(current, fault.at_slot)
                )
            elif isinstance(fault, Brownout):
                self._brownouts.setdefault(fault.node_id, []).append(fault)
            elif isinstance(fault, HarvesterDropout):
                self._dropouts.setdefault(fault.node_id, []).append(fault)
            elif isinstance(fault, HostRestart):
                self._restart_slots.add(fault.at_slot)
            elif isinstance(fault, (PacketLoss, GilbertElliottLoss)):
                for nid in self._links_of(fault.node_id):
                    loss_by_node[nid].append(fault)
            elif isinstance(fault, PayloadCorruption):
                for nid in self._links_of(fault.node_id):
                    corrupt_by_node[nid].append(fault)

        # One RNG stream per link, derived in sorted-node order so the
        # streams are a pure function of the compile RNG.
        self._channels: Dict[int, _LinkChannel] = {}
        noisy = [
            nid
            for nid in sorted(self._node_ids)
            if loss_by_node[nid] or corrupt_by_node[nid]
        ]
        if noisy:
            if rng is None:
                raise ValueError("link faults need an RNG")
            streams = spawn_generators(rng, len(noisy))
            for nid, stream in zip(noisy, streams):
                self._channels[nid] = _LinkChannel(
                    loss_by_node[nid], corrupt_by_node[nid], stream, n_classes
                )

        for outages in self._brownouts.values():
            outages.sort(key=lambda b: b.start_slot)

        self._online: Dict[int, bool] = {nid: True for nid in self._node_ids}
        self._offline_slots: Dict[int, int] = {nid: 0 for nid in self._node_ids}
        self._recoveries: List[_PendingRecovery] = []
        self._awaiting: Dict[int, _PendingRecovery] = {}
        self._host_restarts = 0
        #: Observability surface (assigned by the experiment when on).
        self.obs: Observability = NULL_OBS

    def _links_of(self, node_id: Optional[int]) -> List[int]:
        return self._node_ids if node_id is None else [node_id]

    # ------------------------------------------------------------------
    # slot lifecycle
    # ------------------------------------------------------------------

    def _scheduled_online(self, node_id: int, slot: int) -> bool:
        death = self._deaths.get(node_id)
        if death is not None and slot >= death:
            return False
        return not any(b.covers(slot) for b in self._brownouts.get(node_id, ()))

    def begin_slot(self, slot: int, nodes: Mapping[int, object], host) -> None:
        """Apply slot-boundary fault events before scheduling runs."""
        trace = self.obs.tracer
        if slot in self._restart_slots:
            host.restart()
            self._host_restarts += 1
            logger.debug("slot %d: host restarted (recall store wiped)", slot)
            if trace.enabled:
                trace.emit("fault.fired", slot=slot, fault="host_restart")
        for node_id, node in nodes.items():
            was = self._online[node_id]
            now = self._scheduled_online(node_id, slot)
            if was and not now:
                node.power_down()
                logger.debug("slot %d: node %d powered down", slot, node_id)
                if trace.enabled:
                    trace.emit(
                        "fault.fired", slot=slot, node_id=node_id, fault="power_down"
                    )
                death = self._deaths.get(node_id)
                if death is None or slot < death:
                    # Transient outage: find the covering brownout and
                    # open a recovery record for it.
                    for outage in self._brownouts.get(node_id, ()):
                        if outage.covers(slot):
                            pending = _PendingRecovery(
                                node_id, outage.start_slot, outage.end_slot
                            )
                            self._recoveries.append(pending)
                            self._awaiting.pop(node_id, None)
                            break
            elif not was and now:
                node.power_up()
                logger.debug("slot %d: node %d powered up", slot, node_id)
                if trace.enabled:
                    trace.emit(
                        "fault.fired", slot=slot, node_id=node_id, fault="power_up"
                    )
                for pending in reversed(self._recoveries):
                    if pending.node_id == node_id and pending.recovered_slot is None:
                        self._awaiting[node_id] = pending
                        break
            if not now:
                self._offline_slots[node_id] += 1
            self._online[node_id] = now

    def node_online(self, node_id: int) -> bool:
        """Whether the node is up in the current slot."""
        return self._online[node_id]

    def note_completion(self, node_id: int, slot: int) -> None:
        """Record a completed inference (closes pending recoveries)."""
        pending = self._awaiting.pop(node_id, None)
        if pending is not None:
            pending.recovered_slot = slot
            logger.debug(
                "slot %d: node %d recovered (outage %d-%d)",
                slot, node_id, pending.start_slot, pending.end_slot,
            )
            if self.obs.tracer.enabled:
                self.obs.tracer.emit(
                    "fault.fired", slot=slot, node_id=node_id, fault="recovered"
                )

    # ------------------------------------------------------------------
    # per-node hooks for the substrate
    # ------------------------------------------------------------------

    def link_hook(self, node_id: int) -> Optional[Callable[[int, int], Delivery]]:
        """Delivery hook for one node's CommLink (None = lossless)."""
        return self._channels.get(node_id)

    def harvest_gate(self, node_id: int) -> Optional[Callable[[int], float]]:
        """Harvest multiplier hook for one node (None = no shadowing)."""
        dropouts = self._dropouts.get(node_id)
        if not dropouts:
            return None

        def gate(slot_index: int) -> float:
            scale = 1.0
            for dropout in dropouts:
                scale *= dropout.scale_at(slot_index)
            return scale

        return gate

    # ------------------------------------------------------------------

    def finalize(self, nodes: Sequence[object]) -> FaultStats:
        """Aggregate the run's degradation accounting."""
        per_link = {
            node.node_id: LinkStats(
                messages_sent=node.comm.messages_sent,
                messages_delivered=node.comm.messages_delivered,
                messages_dropped=node.comm.messages_dropped,
                messages_corrupted=node.comm.messages_corrupted,
            )
            for node in nodes
        }
        if self.obs.enabled:
            metrics = self.obs.metrics
            metrics.inc("faults.host_restarts", self._host_restarts)
            for node_id in sorted(self._offline_slots):
                metrics.inc(
                    f"faults.node.{node_id}.offline_slots",
                    self._offline_slots[node_id],
                )
            for node_id in sorted(per_link):
                link = per_link[node_id]
                metrics.inc(f"faults.node.{node_id}.dropped", link.messages_dropped)
                metrics.inc(f"faults.node.{node_id}.corrupted", link.messages_corrupted)
        return FaultStats(
            per_link=per_link,
            offline_slots=dict(self._offline_slots),
            recoveries=tuple(p.freeze() for p in self._recoveries),
            host_restarts=self._host_restarts,
        )
