"""1-D convolution over (batch, channels, length) inputs.

Implemented with an im2col transform so the heavy lifting is a single
matrix multiply; the backward pass reuses the cached columns.  Valid
padding, unit stride — sufficient for the paper's small HAR CNNs while
keeping the energy model exact (every MAC is accounted for).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.initializers import he_normal, zeros
from repro.nn.layers.base import Layer, Shape
from repro.utils.rng import SeedLike, as_generator


def im2col_1d(x: np.ndarray, kernel_size: int) -> np.ndarray:
    """Unfold ``(B, C, L)`` into ``(B, C*K, L_out)`` sliding columns.

    Uses ``sliding_window_view`` so no data is copied until the caller
    reshapes; ``L_out = L - K + 1`` (valid padding).
    """
    if x.ndim != 3:
        raise ModelError(f"expected (B, C, L) input, got shape {x.shape}")
    batch, channels, length = x.shape
    if kernel_size > length:
        raise ModelError(f"kernel {kernel_size} longer than input length {length}")
    # (B, C, L_out, K) view, then fold C and K together.
    windows = np.lib.stride_tricks.sliding_window_view(x, kernel_size, axis=2)
    cols = windows.transpose(0, 1, 3, 2).reshape(batch, channels * kernel_size, -1)
    return np.ascontiguousarray(cols)


class Conv1D(Layer):
    """Valid, stride-1 1-D convolution.

    Parameters
    ----------
    filters:
        Number of output channels.
    kernel_size:
        Temporal extent of each filter.
    seed:
        Initialization seed.
    """

    def __init__(
        self,
        filters: int,
        kernel_size: int,
        seed: SeedLike = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(name)
        if filters < 1 or kernel_size < 1:
            raise ModelError(
                f"filters and kernel_size must be >= 1, got {filters}/{kernel_size}"
            )
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self._rng = as_generator(seed)
        self.W: Optional[np.ndarray] = None  # (filters, in_channels, kernel)
        self.b: Optional[np.ndarray] = None  # (filters,)
        self.dW: Optional[np.ndarray] = None
        self.db: Optional[np.ndarray] = None
        self._cached_cols: Optional[np.ndarray] = None
        self._cached_input_shape: Optional[tuple] = None

    def _build(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 2:
            raise ModelError(f"Conv1D expects (channels, length) input, got {input_shape}")
        in_channels, length = input_shape
        if self.kernel_size > length:
            raise ModelError(
                f"kernel {self.kernel_size} longer than input length {length}"
            )
        fan_in = in_channels * self.kernel_size
        self.W = he_normal(self._rng, (self.filters, in_channels, self.kernel_size), fan_in)
        self.b = zeros((self.filters,))
        self.dW = np.zeros_like(self.W)
        self.db = np.zeros_like(self.b)
        return (self.filters, length - self.kernel_size + 1)

    @property
    def in_channels(self) -> int:
        """Input channel count (after build)."""
        self._require_built()
        return self.input_shape[0]

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_input(x)
        cols = im2col_1d(x.astype(np.float64, copy=False), self.kernel_size)
        if training:
            self._cached_cols = cols
            self._cached_input_shape = x.shape
        w_flat = self.W.reshape(self.filters, -1)  # (F, C*K)
        out = np.einsum("fk,bkl->bfl", w_flat, cols, optimize=True)
        return out + self.b[None, :, None]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cached_cols is None:
            raise ModelError(f"backward() before forward(training=True) in {self.name!r}")
        cols = self._cached_cols  # (B, C*K, L_out)
        batch, channels, length = self._cached_input_shape

        # Parameter gradients.
        self.dW = np.einsum("bfl,bkl->fk", grad_output, cols, optimize=True).reshape(
            self.W.shape
        )
        self.db = grad_output.sum(axis=(0, 2))

        # Input gradient: col2im fold of W^T @ grad.
        w_flat = self.W.reshape(self.filters, -1)  # (F, C*K)
        grad_cols = np.einsum("fk,bfl->bkl", w_flat, grad_output, optimize=True)
        grad_cols = grad_cols.reshape(batch, channels, self.kernel_size, -1)
        grad_input = np.zeros((batch, channels, length), dtype=np.float64)
        l_out = grad_output.shape[2]
        for offset in range(self.kernel_size):
            grad_input[:, :, offset : offset + l_out] += grad_cols[:, :, offset, :]
        return grad_input

    @property
    def params(self) -> Dict[str, np.ndarray]:
        self._require_built()
        return {"W": self.W, "b": self.b}

    @property
    def grads(self) -> Dict[str, np.ndarray]:
        self._require_built()
        return {"W": self.dW, "b": self.db}
