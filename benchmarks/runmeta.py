"""Run metadata stamped into every benchmark results payload.

Every machine-readable artifact under ``benchmarks/results/`` carries a
``meta`` block (git SHA, interpreter/numpy versions, hostname, UTC
timestamp, wall time) so a committed number can always be traced back
to the tree and environment that produced it.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from datetime import datetime, timezone
from typing import Any, Dict, Optional

import numpy as np

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def git_sha(short: bool = True) -> Optional[str]:
    """The checked-out commit, or None outside a git tree / without git."""
    cmd = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(
            cmd,
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def run_metadata(wall_time_s: Optional[float] = None) -> Dict[str, Any]:
    """The environment fingerprint for one benchmark invocation."""
    meta: Dict[str, Any] = {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "argv": list(sys.argv),
    }
    if wall_time_s is not None:
        meta["wall_time_s"] = round(float(wall_time_s), 3)
    return meta


def write_stamped_json(
    path: str, payload: Dict[str, Any], *, wall_time_s: Optional[float] = None
) -> None:
    """Write ``payload`` with a ``meta`` block to ``path`` (pretty JSON)."""
    stamped = dict(payload)
    stamped["meta"] = run_metadata(wall_time_s=wall_time_s)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(stamped, handle, indent=2, sort_keys=False)
        handle.write("\n")


class WallClock:
    """Tiny context manager: ``with WallClock() as clock: ...; clock.elapsed_s``."""

    def __enter__(self) -> "WallClock":
        self._start = time.perf_counter()
        self.elapsed_s = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed_s = time.perf_counter() - self._start
