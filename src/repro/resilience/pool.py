"""A supervised process pool: timeouts, retries, crash recovery.

:class:`SupervisedPool` wraps :class:`~concurrent.futures.ProcessPoolExecutor`
with the failure handling a long sweep needs:

* **Per-task timeouts.**  At most ``workers`` tasks are in flight at a
  time, so every submitted task is actually running; a task that
  overruns ``task_timeout_s`` (measured from submission, which includes
  worker startup after a respawn) marks the whole pool suspect — the
  only way to reclaim a hung worker is to kill its process — so the
  pool is terminated, the overrunning task is charged a failed attempt
  and every innocent in-flight task is requeued free of charge.
* **Bounded retries with deterministic backoff.**  A failed attempt
  (crash, timeout, raised exception) is retried up to ``max_retries``
  times, sleeping ``backoff_s * attempt`` before each resubmission —
  deterministic by construction, no jitter, so two identical runs
  retry on an identical schedule.
* **``BrokenProcessPool`` recovery.**  When a worker dies hard
  (``os._exit``, segfault, OOM kill) the executor is unusable; every
  in-flight task is charged one crash attempt, the pool is respawned
  (re-running the initializer) and surviving work continues.  A
  crashing worker therefore costs one retry, not the sweep.

Tasks are deterministic functions, so a retried task returns exactly
what the first attempt would have — supervision is bit-transparent.
Results come back as :class:`TaskOutcome` in task-submission order;
tasks whose retries exhaust are reported as failed outcomes rather than
raised, leaving salvage policy to the caller.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.observer import NULL_OBS, Observability

logger = logging.getLogger(__name__)


@dataclass
class SupervisedTask:
    """One unit of work for a :class:`SupervisedPool`.

    ``fn`` must be a module-level (picklable) callable.  ``args`` is the
    fixed argument tuple; ``args_for_attempt`` (parent-side, never
    pickled) overrides it per attempt — the hook the chaos harness uses
    to inject a fault on attempt 0 and run clean on the retry.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    args_for_attempt: Optional[Callable[[int], Tuple[Any, ...]]] = None
    label: Optional[str] = None

    def call_args(self, attempt: int) -> Tuple[Any, ...]:
        """The argument tuple to submit for ``attempt`` (0-based)."""
        if self.args_for_attempt is not None:
            return tuple(self.args_for_attempt(attempt))
        return self.args

    @property
    def name(self) -> str:
        """Display name for logs."""
        return self.label if self.label is not None else getattr(
            self.fn, "__name__", repr(self.fn)
        )


@dataclass
class TaskOutcome:
    """Terminal state of one task: its result, or why it failed."""

    index: int
    ok: bool = False
    result: Any = None
    attempts: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def cause(self) -> Optional[str]:
        """The final failure cause (``None`` for clean successes)."""
        return self.failures[-1] if self.failures else None

    @property
    def retried(self) -> bool:
        """Whether this task needed more than one attempt."""
        return self.attempts > 1


class SupervisedPool:
    """Crash-, hang- and interrupt-tolerant process-pool runner.

    One instance is one supervision configuration; :meth:`run` is a
    one-shot call that owns its executor for the duration and always
    shuts it down — with ``cancel_futures=True`` and process
    termination on the error/interrupt path, so no orphan workers
    survive a failed sweep.

    Parameters
    ----------
    workers:
        Pool size; also the in-flight cap (see module docstring).
    initializer / initargs:
        Forwarded to every (re)spawned executor.
    task_timeout_s:
        Per-task wall-clock budget from submission (``None`` = no
        timeout).  Must cover worker startup: after a respawn the first
        task also pays the initializer.
    max_retries:
        Failed attempts a task may retry (0 = one attempt only).
    backoff_s:
        Deterministic linear backoff unit: attempt ``n`` (1-based
        retry) sleeps ``backoff_s * n`` before resubmission.
    heartbeat_s:
        Seconds between liveness gauge updates from the supervision
        loop (used by ``python -m repro.obs.watch``).
    obs:
        Incident counters (``resilience.*``) land here.  The clean path
        records only liveness *gauges* (``resilience.heartbeat`` /
        ``queue_depth`` / ``inflight``, every ``heartbeat_s`` seconds),
        which are excluded from the deterministic metrics — so the
        sweep's workers=N == workers=1 metrics contract still holds.
    """

    def __init__(
        self,
        workers: int,
        *,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        task_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        backoff_s: float = 0.05,
        poll_s: float = 0.05,
        heartbeat_s: float = 1.0,
        obs: Optional[Observability] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {max_retries}")
        if task_timeout_s is not None and task_timeout_s <= 0:
            raise ConfigurationError(
                f"task_timeout_s must be positive or None, got {task_timeout_s}"
            )
        self.workers = int(workers)
        self.initializer = initializer
        self.initargs = tuple(initargs)
        self.task_timeout_s = task_timeout_s
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.poll_s = float(poll_s)
        self.heartbeat_s = float(heartbeat_s)
        self.obs = obs if obs is not None else NULL_OBS
        self._beats = 0
        self._last_beat: Optional[float] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Incident counters of the most recent :meth:`run` (mirrors the
        #: ``resilience.*`` metrics, available even with a null obs).
        self.stats: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # the supervision loop
    # ------------------------------------------------------------------

    def run(
        self,
        tasks: Sequence[SupervisedTask],
        *,
        on_outcome: Optional[Callable[[TaskOutcome], None]] = None,
    ) -> List[TaskOutcome]:
        """Run every task to a terminal outcome; never raises for task
        failures (inspect the outcomes), always reaps its workers.

        ``on_outcome`` is invoked in the parent as each task reaches its
        terminal state (completion order, not submission order) — the
        journal's crash-tolerance hook.  The returned list is in task
        order regardless.
        """
        tasks = list(tasks)
        self.stats = {
            key: 0
            for key in (
                "crashes",
                "timeouts",
                "task_errors",
                "retries",
                "requeued",
                "pool_restarts",
                "giveups",
            )
        }
        outcomes = [TaskOutcome(index=index) for index in range(len(tasks))]
        if not tasks:
            return outcomes
        self._beats = 0
        self._last_beat = None
        pending: Deque[Tuple[int, int]] = deque(
            (index, 0) for index in range(len(tasks))
        )
        inflight: Dict[Future, Tuple[int, int, Optional[float]]] = {}
        clean = False
        try:
            while pending or inflight:
                pool = self._ensure_pool()
                while pending and len(inflight) < self.workers:
                    index, attempt = pending.popleft()
                    if attempt and self.backoff_s:
                        time.sleep(self.backoff_s * attempt)
                    future = pool.submit(
                        tasks[index].fn, *tasks[index].call_args(attempt)
                    )
                    deadline = (
                        time.monotonic() + self.task_timeout_s
                        if self.task_timeout_s is not None
                        else None
                    )
                    inflight[future] = (index, attempt, deadline)
                self._heartbeat(len(pending), len(inflight))
                done, _ = wait(
                    set(inflight), timeout=self.poll_s, return_when=FIRST_COMPLETED
                )
                broken = False
                for future in sorted(done, key=lambda f: inflight[f][0]):
                    index, attempt, _ = inflight.pop(future)
                    error = future.exception()
                    if error is None:
                        outcome = outcomes[index]
                        outcome.ok = True
                        outcome.result = future.result()
                        outcome.attempts = attempt + 1
                        if on_outcome is not None:
                            on_outcome(outcome)
                    elif isinstance(error, BrokenProcessPool):
                        broken = True
                        self._attempt_failed(
                            tasks, outcomes, pending, index, attempt,
                            "crashes", "worker crashed (BrokenProcessPool)",
                            on_outcome,
                        )
                    else:
                        self._attempt_failed(
                            tasks, outcomes, pending, index, attempt,
                            "task_errors", f"{type(error).__name__}: {error}",
                            on_outcome,
                        )
                if broken:
                    # The executor is dead: every in-flight sibling will
                    # fail the same way, so charge them all one crash
                    # attempt now and respawn once.
                    for future in sorted(inflight, key=lambda f: inflight[f][0]):
                        index, attempt, _ = inflight.pop(future)
                        self._attempt_failed(
                            tasks, outcomes, pending, index, attempt,
                            "crashes", "worker crashed (BrokenProcessPool)",
                            on_outcome,
                        )
                    self._restart_pool()
                    continue
                if self.task_timeout_s is not None and inflight:
                    now = time.monotonic()
                    expired = {
                        future
                        for future, (_, _, deadline) in inflight.items()
                        if deadline is not None and now >= deadline
                    }
                    if expired:
                        # Hung workers can only be reclaimed by killing
                        # their processes, which takes the pool with
                        # them; in-flight innocents requeue uncharged.
                        for future in sorted(
                            inflight, key=lambda f: inflight[f][0]
                        ):
                            index, attempt, _ = inflight.pop(future)
                            if future in expired:
                                self._attempt_failed(
                                    tasks, outcomes, pending, index, attempt,
                                    "timeouts",
                                    f"timed out after {self.task_timeout_s:.1f}s",
                                    on_outcome,
                                )
                            else:
                                self._count("requeued")
                                pending.append((index, attempt))
                        self._restart_pool()
            # Final beat so the gauges read drained, not last-polled.
            self._last_beat = None
            self._heartbeat(0, 0)
            clean = True
        finally:
            self._shutdown(force=not clean)
        return outcomes

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------

    def _heartbeat(self, n_pending: int, n_inflight: int) -> None:
        """Cadenced liveness gauges for the live watcher.

        Runs once per ``heartbeat_s`` inside the supervision loop:
        ``resilience.heartbeat`` (beat count), ``resilience.queue_depth``
        and ``resilience.inflight`` say the supervisor is alive and what
        it is holding — a watcher seeing a stale heartbeat knows the
        parent is gone, not just slow.  Gauges only (excluded from the
        deterministic metrics), so workers=N == workers=1 still holds
        on the clean path.
        """
        if not self.obs.enabled:
            return
        now = time.monotonic()
        if self._last_beat is not None and now - self._last_beat < self.heartbeat_s:
            return
        self._last_beat = now
        self._beats += 1
        metrics = self.obs.metrics
        metrics.gauge("resilience.heartbeat").set(self._beats)
        metrics.gauge("resilience.queue_depth").set(n_pending)
        metrics.gauge("resilience.inflight").set(n_inflight)
        timeseries = self.obs.timeseries
        if timeseries is not None:
            timeseries.sample()

    # ------------------------------------------------------------------
    # failure accounting
    # ------------------------------------------------------------------

    def _attempt_failed(
        self,
        tasks: Sequence[SupervisedTask],
        outcomes: List[TaskOutcome],
        pending: Deque[Tuple[int, int]],
        index: int,
        attempt: int,
        kind: str,
        message: str,
        on_outcome: Optional[Callable[[TaskOutcome], None]],
    ) -> None:
        outcome = outcomes[index]
        outcome.attempts = attempt + 1
        outcome.failures.append(message)
        self._count(kind)
        if attempt < self.max_retries:
            self._count("retries")
            logger.warning(
                "task %s attempt %d/%d failed (%s); retrying",
                tasks[index].name, attempt + 1, self.max_retries + 1, message,
            )
            pending.append((index, attempt + 1))
        else:
            self._count("giveups")
            logger.error(
                "task %s exhausted %d attempt(s): %s",
                tasks[index].name, attempt + 1, message,
            )
            if on_outcome is not None:
                on_outcome(outcome)

    def _count(self, kind: str) -> None:
        self.stats[kind] = self.stats.get(kind, 0) + 1
        if self.obs.enabled:
            self.obs.metrics.inc(f"resilience.{kind}")
            timeseries = self.obs.timeseries
            if timeseries is not None:
                # Incidents are rare: mark each one so the watcher can
                # anchor retry/crash spikes to wall-clock time.
                timeseries.mark(f"resilience.{kind}")
                timeseries.sample()

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=self.initializer,
                initargs=self.initargs,
            )
        return self._pool

    def _restart_pool(self) -> None:
        self._count("pool_restarts")
        logger.warning("supervised pool restarting (%d worker(s))", self.workers)
        self._kill_pool()

    def _kill_pool(self) -> None:
        """Tear the executor down hard, reaping hung/dead workers."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        # _processes is CPython-internal but stable across 3.8+; it is
        # the only handle on hung workers, which ignore shutdown().
        workers = list(dict(getattr(pool, "_processes", None) or {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
        for proc in workers:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stubborn worker
                proc.kill()
                proc.join(timeout=2.0)

    def _shutdown(self, *, force: bool) -> None:
        """Final cleanup: graceful when the run completed, hard kill
        (terminate + ``cancel_futures=True``) on error or interrupt so
        no worker process is ever orphaned."""
        if force:
            self._kill_pool()
            return
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)
