"""Scheduling policies for the EH-WSN."""

from repro.core.scheduling.base import SchedulingContext, SchedulingPolicy
from repro.core.scheduling.naive import NaiveAllOn
from repro.core.scheduling.rank_table import RankTable
from repro.core.scheduling.round_robin import ExtendedRoundRobin
from repro.core.scheduling.aas import ActivityAwareScheduler

__all__ = [
    "SchedulingContext",
    "SchedulingPolicy",
    "NaiveAllOn",
    "RankTable",
    "ExtendedRoundRobin",
    "ActivityAwareScheduler",
]
