"""Per-layer inference energy estimation.

The paper builds its Baseline-2 by pruning DNNs "to fit the average
harvested power budget" using energy-aware pruning (Yang et al.,
CVPR'17).  That requires an energy model: this module counts MACs,
memory accesses and simple ops per layer and converts them to joules
with MCU-class cost constants (nanojoule scale, matching the
ultra-low-power compute node of ResIRCA rather than an ASIC), plus a
fixed per-inference overhead for sensor readout, wake-up and NVP
checkpointing.

The resulting inference energies (hundreds of microjoules) sit in the
same regime as WiFi RF harvesting (tens of microwatts), which is what
makes the paper's scheduling problem non-trivial.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import EnergyModelError
from repro.nn.layers import (
    BatchNorm1D,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool1D,
    Layer,
    MaxPool1D,
    ReLU,
)
from repro.nn.model import Sequential


@dataclass(frozen=True)
class EnergyCostModel:
    """Energy cost constants of the compute node.

    Attributes
    ----------
    mac_j:
        Energy of one multiply-accumulate (joules).
    mem_access_j:
        Energy of one word read/written from/to on-chip memory.
    simple_op_j:
        Energy of one comparison/add/scale (pooling, ReLU, batch norm).
    fixed_overhead_j:
        Per-inference constant: IMU readout, wake-up, control, and NVP
        checkpoint writes.
    """

    mac_j: float = 1.2e-9
    mem_access_j: float = 0.3e-9
    simple_op_j: float = 0.2e-9
    fixed_overhead_j: float = 15e-6

    def __post_init__(self) -> None:
        for name in ("mac_j", "mem_access_j", "simple_op_j", "fixed_overhead_j"):
            if getattr(self, name) < 0:
                raise EnergyModelError(f"{name} must be >= 0")

    @staticmethod
    def mcu_default() -> "EnergyCostModel":
        """The default MCU-class cost model described above."""
        return EnergyCostModel()


@dataclass(frozen=True)
class LayerEnergy:
    """Energy breakdown for one layer at one input shape."""

    layer_name: str
    macs: int
    mem_accesses: int
    simple_ops: int
    energy_j: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.layer_name}: {self.macs} MACs, {self.mem_accesses} mem, "
            f"{self.simple_ops} ops -> {self.energy_j * 1e6:.2f} uJ"
        )


def _layer_counts(layer: Layer) -> tuple:
    """``(macs, mem_accesses, simple_ops)`` for one built layer."""
    if not layer.built:
        raise EnergyModelError(f"layer {layer.name!r} must be built first")
    in_shape, out_shape = layer.input_shape, layer.output_shape
    in_size = int(np.prod(in_shape))
    out_size = int(np.prod(out_shape))

    if isinstance(layer, Conv1D):
        filters, l_out = out_shape
        channels = in_shape[0]
        macs = filters * channels * layer.kernel_size * l_out
        weights = filters * channels * layer.kernel_size + filters
        mem = weights + in_size + out_size
        return macs, mem, 0
    if isinstance(layer, Dense):
        macs = in_shape[0] * layer.units
        weights = in_shape[0] * layer.units + layer.units
        mem = weights + in_size + out_size
        return macs, mem, 0
    if isinstance(layer, (MaxPool1D, GlobalAvgPool1D)):
        return 0, in_size + out_size, in_size
    if isinstance(layer, ReLU):
        return 0, in_size + out_size, in_size
    if isinstance(layer, BatchNorm1D):
        # One scale and one shift per element at inference time.
        return 0, in_size + out_size + 4 * in_shape[0], 2 * in_size
    if isinstance(layer, (Flatten, Dropout)):
        # Identity at inference time (dropout disabled, flatten is a view).
        return 0, 0, 0
    raise EnergyModelError(f"no energy model for layer type {type(layer).__name__}")


def layer_energy(layer: Layer, cost: EnergyCostModel) -> LayerEnergy:
    """Energy of one built layer under ``cost``."""
    macs, mem, ops = _layer_counts(layer)
    energy = macs * cost.mac_j + mem * cost.mem_access_j + ops * cost.simple_op_j
    return LayerEnergy(layer.name, macs, mem, ops, energy)


def estimate_inference_energy(
    model: Sequential, cost: EnergyCostModel = EnergyCostModel()
) -> float:
    """Total joules for one inference through a built model."""
    breakdown = energy_breakdown(model, cost)
    return cost.fixed_overhead_j + sum(entry.energy_j for entry in breakdown)


def energy_breakdown(
    model: Sequential, cost: EnergyCostModel = EnergyCostModel()
) -> List[LayerEnergy]:
    """Per-layer energy entries (excluding the fixed overhead)."""
    if not model.built:
        raise EnergyModelError("model must be built before estimating energy")
    return [layer_energy(layer, cost) for layer in model.layers]


def format_energy_report(model: Sequential, cost: EnergyCostModel = EnergyCostModel()) -> str:
    """Human-readable per-layer energy table."""
    entries = energy_breakdown(model, cost)
    total = estimate_inference_energy(model, cost)
    lines = [f"Energy report for {model.name} (total {total * 1e6:.1f} uJ/inference)"]
    lines.append(f"  {'layer':<22}{'MACs':>10}{'mem':>10}{'ops':>10}{'uJ':>9}")
    for entry in entries:
        lines.append(
            f"  {entry.layer_name:<22}{entry.macs:>10}{entry.mem_accesses:>10}"
            f"{entry.simple_ops:>10}{entry.energy_j * 1e6:>9.2f}"
        )
    lines.append(f"  {'fixed overhead':<52}{cost.fixed_overhead_j * 1e6:>9.2f}")
    return "\n".join(lines)
