"""Mini-batch training loop."""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.losses import CrossEntropyLoss
from repro.nn.metrics import accuracy
from repro.nn.model import Sequential
from repro.nn.optimizers import Optimizer
from repro.utils.rng import SeedLike, as_generator

logger = logging.getLogger(__name__)


@dataclass
class TrainingHistory:
    """Per-epoch records of one :meth:`Trainer.fit` run."""

    train_loss: List[float] = field(default_factory=list)
    train_accuracy: List[float] = field(default_factory=list)
    val_accuracy: List[float] = field(default_factory=list)
    best_epoch: int = -1

    @property
    def n_epochs(self) -> int:
        """How many epochs actually ran."""
        return len(self.train_loss)

    @property
    def final_val_accuracy(self) -> float:
        """Validation accuracy of the last epoch (NaN if no validation)."""
        return self.val_accuracy[-1] if self.val_accuracy else float("nan")


class Trainer:
    """Trains a :class:`~repro.nn.model.Sequential` model.

    Parameters
    ----------
    model:
        Model to train; built automatically on first :meth:`fit` if needed.
    loss:
        Loss object (defaults to plain cross-entropy).
    optimizer:
        Any :class:`~repro.nn.optimizers.Optimizer`.
    """

    def __init__(
        self,
        model: Sequential,
        loss: Optional[CrossEntropyLoss] = None,
        optimizer: Optional[Optimizer] = None,
    ) -> None:
        from repro.nn.optimizers import Adam  # local: avoid import cycle at module load

        self.model = model
        self.loss = loss or CrossEntropyLoss()
        self.optimizer = optimizer or Adam(learning_rate=1e-3)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 20,
        batch_size: int = 32,
        seed: SeedLike = None,
        validation: Optional[Tuple[np.ndarray, np.ndarray]] = None,
        early_stopping_patience: Optional[int] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train with shuffled mini-batches.

        With ``validation`` and ``early_stopping_patience`` set, training
        stops after that many epochs without a validation-accuracy
        improvement, and the best-epoch weights are restored.
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.shape[0] != y.shape[0] or X.shape[0] == 0:
            raise ModelError(f"X/y size mismatch: {X.shape[0]} vs {y.shape[0]}")
        if epochs < 1 or batch_size < 1:
            raise ModelError(f"epochs/batch_size must be >= 1, got {epochs}/{batch_size}")

        if not self.model.built:
            self.model.build(X.shape[1:])

        rng = as_generator(seed)
        history = TrainingHistory()
        best_state = None
        best_val = -np.inf
        stale_epochs = 0

        for epoch in range(epochs):
            order = rng.permutation(X.shape[0])
            epoch_loss = 0.0
            epoch_correct = 0
            for start in range(0, X.shape[0], batch_size):
                batch_idx = order[start : start + batch_size]
                xb, yb = X[batch_idx], y[batch_idx]
                logits = self.model.forward(xb, training=True)
                epoch_loss += self.loss.forward(logits, yb) * len(batch_idx)
                epoch_correct += int((logits.argmax(axis=1) == yb).sum())
                self.model.backward(self.loss.backward())
                self.optimizer.step(self.model.parameters())

            history.train_loss.append(epoch_loss / X.shape[0])
            history.train_accuracy.append(epoch_correct / X.shape[0])

            if validation is not None:
                val_x, val_y = validation
                val_acc = accuracy(val_y, self.model.predict(val_x))
                history.val_accuracy.append(val_acc)
                if val_acc > best_val:
                    best_val = val_acc
                    history.best_epoch = epoch
                    stale_epochs = 0
                    if early_stopping_patience is not None:
                        best_state = self.model.state_dict()
                else:
                    stale_epochs += 1
                if (
                    early_stopping_patience is not None
                    and stale_epochs >= early_stopping_patience
                ):
                    break
            if verbose:  # pragma: no cover - logging only
                val_part = (
                    f"  val_acc={history.val_accuracy[-1]:.3f}"
                    if history.val_accuracy
                    else ""
                )
                logger.info(
                    "epoch %d/%d  loss=%.4f  acc=%.3f%s",
                    epoch + 1, epochs, history.train_loss[-1],
                    history.train_accuracy[-1], val_part,
                )

        if best_state is not None:
            self.model.load_state_dict(best_state)
        return history
