"""Benchmark fixtures.

Two fully calibrated experiments (MHEALTH-like, PAMAP2-like) are built
once per session — training six CNNs takes under a minute each — and
shared by every bench.  Each bench writes its rendered figure/table to
``benchmarks/results/<name>.txt`` so a bench run leaves the reproduced
paper artifacts on disk (EXPERIMENTS.md is compiled from them), plus a
``<name>.metrics.json`` snapshot of the session's observability
registry (timers, counters, histograms accumulated so far) stamped
with the run metadata from :mod:`benchmarks.runmeta`.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from benchmarks.runmeta import write_stamped_json
from repro.obs.observer import Observability
from repro.obs.trace import NULL_TRACER
from repro.sim.experiment import HARExperiment, SimulationConfig

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Shared evaluation horizon and seeds (averaged for stability).
N_WINDOWS = 500
SEEDS = (11, 12, 13, 14)
DWELL = 5.0

#: One metrics-only observability bundle shared by every bench of the
#: session; its registry snapshot is written next to each result.
SESSION_OBS = Observability(tracer=NULL_TRACER)


def standard_config() -> SimulationConfig:
    return SimulationConfig(n_windows=N_WINDOWS, dwell_scale=DWELL)


@pytest.fixture(scope="session")
def mhealth_exp() -> HARExperiment:
    return HARExperiment.standard_mhealth(seed=7, config=standard_config())


@pytest.fixture(scope="session")
def pamap2_exp() -> HARExperiment:
    return HARExperiment.standard_pamap2(seed=7, config=standard_config())


@pytest.fixture(scope="session")
def bench_obs() -> Observability:
    """The session-wide observability bundle (metrics only, no trace)."""
    return SESSION_OBS


@pytest.fixture(scope="session")
def save_result():
    """Writer: persist a rendered figure (+ metrics snapshot), echo it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)

    def write(name: str, text: str) -> None:
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        write_stamped_json(
            os.path.join(RESULTS_DIR, f"{name}.metrics.json"),
            {"bench": name, "metrics": SESSION_OBS.metrics.to_dict()},
        )
        print("\n" + text)

    return write


def averaged_event_accuracy(experiment, spec, seeds=SEEDS, obs=SESSION_OBS):
    """Mean event accuracy of a policy over the shared seeds."""
    runs = [
        experiment.run(
            spec,
            seed=seed,
            subject=experiment.dataset.eval_subjects[seed % 2],
            obs=obs,
        )
        for seed in seeds
    ]
    return float(np.mean([run.event_accuracy for run in runs])), runs


def averaged_per_activity(runs):
    """Mean per-activity event accuracy across runs."""
    activities = runs[0].activities
    out = {}
    for activity in activities:
        values = [run.per_activity_event_accuracy()[activity] for run in runs]
        values = [v for v in values if v == v]  # drop NaNs
        out[activity] = float(np.mean(values)) if values else float("nan")
    return out
