"""Supervised, checkpointed, crash-tolerant execution (``repro.resilience``).

The paper's Discussion claims Origin "poses minimum risk if one of the
sensors fails"; this package extends the same graceful-degradation bar
from the simulated WSN to the execution substrate that runs it.  Three
layers compose:

* :class:`SupervisedPool` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  wrapper with per-task timeouts, bounded deterministic-backoff retries
  and ``BrokenProcessPool`` recovery, so a segfaulting / OOM-killed /
  hung worker costs one retry instead of the whole sweep;
* :class:`SweepJournal` — an append-only JSONL checkpoint of completed
  ``(policy, seed)`` cells keyed by the sweep's run-material/bundle
  digest, making long sweeps resumable after a crash or Ctrl-C with
  byte-identical results;
* :class:`DegradationReport` — partial-result salvage accounting for
  sweeps run with ``on_failure="salvage"``: which cells failed, why and
  after how many attempts.

:mod:`repro.resilience.chaos` is the matching test harness: it injects
scheduled worker crashes, hangs and store-entry deletions so the
recovery paths above are exercised by tests and by
``bench_perf_sweep --chaos``, not just trusted.
"""

from repro.resilience.chaos import ChaosAction, ChaosPlan, apply_chaos
from repro.resilience.journal import (
    JOURNAL_SCHEMA_VERSION,
    SweepJournal,
    baseline_cell,
    decode_baseline_result,
    decode_experiment_result,
    encode_baseline_result,
    encode_experiment_result,
    policy_cell,
    sweep_fingerprint,
)
from repro.resilience.pool import SupervisedPool, SupervisedTask, TaskOutcome
from repro.resilience.report import DegradationReport, FailedCell

__all__ = [
    "ChaosAction",
    "ChaosPlan",
    "DegradationReport",
    "FailedCell",
    "JOURNAL_SCHEMA_VERSION",
    "SupervisedPool",
    "SupervisedTask",
    "SweepJournal",
    "TaskOutcome",
    "apply_chaos",
    "baseline_cell",
    "decode_baseline_result",
    "decode_experiment_result",
    "encode_baseline_result",
    "encode_experiment_result",
    "policy_cell",
    "sweep_fingerprint",
]
