"""Fig. 5b — the full policy ladder on the PAMAP2-like dataset."""

import numpy as np
import pytest

from benchmarks.conftest import SEEDS
from repro.reporting import render_fig5_policies
from repro.sim.sweep import PolicySweep, paper_policy_grid

RR_LENGTHS = (3, 6, 9, 12)


@pytest.fixture(scope="module")
def sweep(pamap2_exp):
    runner = PolicySweep(pamap2_exp, n_seeds=len(SEEDS), include_baselines=True)
    return runner.run(paper_policy_grid(RR_LENGTHS), seed=SEEDS[0])


def event_overall(sweep, name):
    return sweep.policy(name).event_accuracy


def test_fig5b_render(sweep, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_result("fig5b_pamap2", render_fig5_policies("PAMAP2", sweep))


def test_fig5b_five_activities(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert len(sweep.activities) == 5


def test_fig5b_ladder_ordering(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rungs = {"rr": [], "aas": [], "aasr": [], "origin": []}
    for n in RR_LENGTHS:
        rungs["rr"].append(event_overall(sweep, f"RR{n}"))
        rungs["aas"].append(event_overall(sweep, f"RR{n} AAS"))
        rungs["aasr"].append(event_overall(sweep, f"RR{n} AASR"))
        rungs["origin"].append(event_overall(sweep, f"RR{n} Origin"))
    means = {name: float(np.mean(values)) for name, values in rungs.items()}
    assert means["aas"] > means["rr"], means
    assert means["aasr"] > means["aas"] - 0.01, means
    assert means["origin"] > means["aasr"] - 0.01, means


def test_fig5b_origin_near_pruned_baseline(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    bl2 = sweep.baseline("Baseline-2").overall_accuracy
    best_origin = max(event_overall(sweep, f"RR{n} Origin") for n in RR_LENGTHS)
    assert best_origin > bl2 - 0.06


def test_fig5b_timing(benchmark, pamap2_exp):
    from repro.core.policies import aasr_policy

    benchmark.pedantic(
        lambda: pamap2_exp.run(aasr_policy(12), seed=1, n_windows=120),
        rounds=1,
        iterations=1,
    )
