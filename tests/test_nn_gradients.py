"""Numerical gradient checks for every differentiable layer and the loss.

Central finite differences against the analytic backward pass — the
strongest correctness evidence a from-scratch NN library can have.
"""

import numpy as np
import pytest

from repro.nn.layers import (
    BatchNorm1D,
    Conv1D,
    Dense,
    Flatten,
    GlobalAvgPool1D,
    MaxPool1D,
    ReLU,
)
from repro.nn.losses import CrossEntropyLoss
from repro.nn.model import Sequential

EPS = 1e-5
RNG = np.random.default_rng(42)


def numerical_gradient(fn, array, eps=EPS):
    """Central-difference gradient of scalar ``fn`` wrt ``array`` in place."""
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + eps
        plus = fn()
        flat[index] = original - eps
        minus = fn()
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2 * eps)
    return grad


def check_layer_gradients(layer, input_shape, batch=3, atol=1e-6):
    """Verify input and parameter gradients of one layer."""
    layer.build(input_shape)
    x = RNG.normal(size=(batch,) + tuple(input_shape))
    # Random projection makes the output a scalar loss.
    out_shape = layer.forward(x, training=True).shape
    projection = RNG.normal(size=out_shape)

    def loss():
        return float((layer.forward(x, training=True) * projection).sum())

    loss()  # populate caches
    analytic_input = layer.backward(projection)
    numeric_input = numerical_gradient(loss, x)
    np.testing.assert_allclose(analytic_input, numeric_input, atol=atol, rtol=1e-4)

    for key, param in layer.params.items():
        loss()
        layer.backward(projection)
        analytic = layer.grads[key].copy()
        numeric = numerical_gradient(loss, param)
        np.testing.assert_allclose(
            analytic, numeric, atol=atol, rtol=1e-4, err_msg=f"param {key}"
        )


class TestLayerGradients:
    def test_dense(self):
        check_layer_gradients(Dense(4, seed=0), (5,))

    def test_conv1d(self):
        check_layer_gradients(Conv1D(3, 3, seed=0), (2, 8))

    def test_relu(self):
        # Shift inputs away from the kink at 0.
        layer = ReLU()
        layer.build((6,))
        x = RNG.normal(size=(3, 6)) + np.where(RNG.random((3, 6)) > 0.5, 2.0, -2.0)
        projection = RNG.normal(size=(3, 6))

        def loss():
            return float((layer.forward(x, training=True) * projection).sum())

        loss()
        analytic = layer.backward(projection)
        numeric = numerical_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_maxpool(self):
        # Distinct values avoid argmax ties under perturbation.
        layer = MaxPool1D(2)
        layer.build((2, 6))
        # .copy() keeps the array contiguous so the finite-difference
        # helper's reshape(-1) stays a view onto the same memory.
        x = RNG.permutation(24).astype(np.float64).reshape(1, 2, 12)[:, :, :6].copy()
        projection = RNG.normal(size=(1, 2, 3))

        def loss():
            return float((layer.forward(x, training=True) * projection).sum())

        loss()
        analytic = layer.backward(projection)
        numeric = numerical_gradient(loss, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_global_avg_pool(self):
        check_layer_gradients(GlobalAvgPool1D(), (3, 5))

    def test_flatten(self):
        check_layer_gradients(Flatten(), (2, 4))

    def test_batchnorm_dense(self):
        check_layer_gradients(BatchNorm1D(), (4,), batch=6, atol=1e-5)

    def test_batchnorm_conv(self):
        check_layer_gradients(BatchNorm1D(), (2, 5), batch=4, atol=1e-5)


class TestLossGradient:
    def test_cross_entropy(self):
        loss = CrossEntropyLoss()
        logits = RNG.normal(size=(4, 3))
        targets = np.array([0, 2, 1, 2])

        def value():
            return loss.forward(logits, targets)

        value()
        analytic = loss.backward()
        numeric = numerical_gradient(value, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_cross_entropy_with_smoothing(self):
        loss = CrossEntropyLoss(label_smoothing=0.1)
        logits = RNG.normal(size=(3, 4))
        targets = np.array([1, 0, 3])

        def value():
            return loss.forward(logits, targets)

        value()
        analytic = loss.backward()
        numeric = numerical_gradient(value, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestEndToEndGradient:
    def test_small_cnn_chain(self):
        """Whole-model gradient wrt input through conv/pool/dense."""
        model = Sequential(
            [
                Conv1D(2, 3, seed=1),
                ReLU(),
                MaxPool1D(2),
                Flatten(),
                Dense(3, seed=2),
            ]
        ).build((2, 10))
        loss = CrossEntropyLoss()
        x = RNG.normal(size=(2, 2, 10)) * 2.0
        targets = np.array([0, 2])

        def value():
            return loss.forward(model.forward(x, training=True), targets)

        value()
        analytic = model.backward(loss.backward())
        numeric = numerical_gradient(value, x)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5, rtol=1e-3)
