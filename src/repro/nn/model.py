"""Sequential model container."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError
from repro.nn.layers.activations import softmax
from repro.nn.layers.base import Layer, Shape
from repro.nn.optimizers import ParamGrad


class Sequential:
    """A linear stack of layers.

    The model is built once against an input shape (excluding batch);
    after that :meth:`forward`/:meth:`backward` run full passes, and the
    prediction helpers add softmax/argmax on top.

    Parameters
    ----------
    layers:
        Layers in execution order.
    name:
        Display name (used by summaries and checkpoints).
    """

    def __init__(self, layers: Sequence[Layer], name: str = "model") -> None:
        if not layers:
            raise ModelError("a Sequential model needs at least one layer")
        self.layers: List[Layer] = list(layers)
        self.name = name
        self.input_shape: Optional[Shape] = None
        self.output_shape: Optional[Shape] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @property
    def built(self) -> bool:
        """Whether :meth:`build` has run."""
        return self.output_shape is not None

    def build(self, input_shape: Shape) -> "Sequential":
        """Build every layer, inferring shapes; returns ``self``."""
        shape = tuple(input_shape)
        self.input_shape = shape
        for layer in self.layers:
            shape = layer.build(shape)
        self.output_shape = shape
        return self

    def _require_built(self) -> None:
        if not self.built:
            raise ModelError(f"model {self.name!r} used before build()")

    # ------------------------------------------------------------------
    # passes
    # ------------------------------------------------------------------

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Run all layers; returns raw logits (no softmax)."""
        self._require_built()
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate dL/dlogits through the stack."""
        self._require_built()
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    # ------------------------------------------------------------------
    # prediction helpers
    # ------------------------------------------------------------------

    def predict_logits(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Inference-mode logits, computed in batches.

        A zero-row input yields an empty ``(0, *output_shape)`` array
        (batched precompute paths legitimately see empty window sets).
        """
        self._require_built()
        x = np.asarray(x)
        if x.shape[0] == 0:
            return np.zeros((0, *self.output_shape), dtype=np.float64)
        outputs = [
            self.forward(x[start : start + batch_size], training=False)
            for start in range(0, x.shape[0], batch_size)
        ]
        return np.concatenate(outputs, axis=0)

    def predict_proba(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Softmax class probabilities."""
        return softmax(self.predict_logits(x, batch_size), axis=1)

    def predict(self, x: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Argmax class labels."""
        return self.predict_logits(x, batch_size).argmax(axis=1)

    # ------------------------------------------------------------------
    # parameters
    # ------------------------------------------------------------------

    def parameters(self) -> Iterator[ParamGrad]:
        """Yield ``(param, grad)`` pairs for the optimizer."""
        self._require_built()
        for layer in self.layers:
            params, grads = layer.params, layer.grads
            for key in params:
                yield params[key], grads[key]

    def n_params(self) -> int:
        """Total trainable scalar count."""
        return sum(layer.n_params() for layer in self.layers)

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of all parameters, keyed ``<index>.<layer>.<param>``."""
        self._require_built()
        state = {}
        for index, layer in enumerate(self.layers):
            for key, value in layer.params.items():
                state[f"{index}.{layer.name}.{key}"] = value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (strict match)."""
        self._require_built()
        expected = self.state_dict()
        missing = set(expected) - set(state)
        unexpected = set(state) - set(expected)
        if missing or unexpected:
            raise ModelError(
                f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for index, layer in enumerate(self.layers):
            for key, param in layer.params.items():
                incoming = np.asarray(state[f"{index}.{layer.name}.{key}"])
                if incoming.shape != param.shape:
                    raise ModelError(
                        f"shape mismatch for {layer.name}.{key}: "
                        f"{incoming.shape} vs {param.shape}"
                    )
                param[...] = incoming

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """A Keras-style text summary of layers, shapes and params."""
        self._require_built()
        lines = [f"Model: {self.name}  (input {self.input_shape})"]
        lines.append(f"{'layer':<24}{'output shape':<20}{'params':>10}")
        lines.append("-" * 54)
        for layer in self.layers:
            lines.append(
                f"{layer.name:<24}{str(layer.output_shape):<20}{layer.n_params():>10}"
            )
        lines.append("-" * 54)
        lines.append(f"{'total':<44}{self.n_params():>10}")
        return "\n".join(lines)

    def layer_shapes(self) -> List[Tuple[str, Shape, Shape]]:
        """``(name, input_shape, output_shape)`` for every layer."""
        self._require_built()
        return [(layer.name, layer.input_shape, layer.output_shape) for layer in self.layers]
