"""Live terminal dashboard over an in-flight run directory.

::

    python -m repro.obs.watch runs/cohort-a            # refreshing dashboard
    python -m repro.obs.watch runs/cohort-a --once     # one frame (CI, non-TTY)

The watcher tails the two files a ``--run-dir``-armed job streams —
the shard journal (``fleet.journal`` / ``sweep.journal``) and the
timeseries (``timeseries.jsonl``) — and renders shard progress, users/s,
ETA, worker health and incident counters.  It is strictly **read-only**:
both files are parsed in place (never through ``SweepJournal.open``,
which holds an append handle and truncates torn tails), so attaching and
detaching mid-run cannot perturb the run.  Torn tails — the writer is
mid-append, or died there — are skipped, not fatal; a directory with no
files yet renders a waiting frame.

A frame, mid-flight::

    fleet run · runs/cohort-a
    job       users=2000 dataset=mhealth policy=origin workers=4
    progress  [######################------------------------]  1024/2000 users (51.2%)
    shards    4/8 done (0 from journal)
    rate      171.4 users/s   ETA 6s   stream age 0.4s
    workers   heartbeat #9 · in-flight 4 · queue 2
    incidents retries=1 crashes=0 timeouts=0 giveups=0
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.timeline import TimeSeriesTail, _rate_from_samples

__all__ = ["RunSnapshot", "snapshot_run_dir", "render_frame", "main"]

#: Journal file names probed (in order) inside a run directory.
JOURNAL_NAMES = ("fleet.journal", "sweep.journal")

#: Seconds after which a silent timeseries stream is flagged stale.
STALE_AFTER_S = 10.0

#: Samples of lookback for the rate estimate (recent, not lifetime).
RATE_SPAN = 32

_BAR_WIDTH = 46

#: Incident counters surfaced on the dashboard, in display order.
_INCIDENTS = (
    "resilience.retries",
    "resilience.crashes",
    "resilience.timeouts",
    "resilience.giveups",
    "resilience.requeued",
    "resilience.pool_restarts",
    "kernel.fallback",
)


@dataclass
class RunSnapshot:
    """Everything one dashboard frame needs, parsed read-only."""

    run_dir: str
    journal_path: Optional[str] = None
    journal_cells: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    ts_meta: Dict[str, Any] = field(default_factory=dict)
    samples: List[Dict[str, Any]] = field(default_factory=list)
    marks: List[Dict[str, Any]] = field(default_factory=list)

    # -- journal-derived progress --------------------------------------

    @property
    def done_shards(self) -> int:
        return sum(1 for cell in self.journal_cells if cell.startswith("shard:"))

    @property
    def done_users(self) -> int:
        total = 0
        for cell in self.journal_cells:
            span = _shard_span(cell)
            if span is not None:
                total += span[1] - span[0]
        return total

    @property
    def done_cells(self) -> int:
        """Sweep-journal cells (``policy:``/``baseline:``) completed."""
        return sum(
            1
            for cell in self.journal_cells
            if cell.startswith(("policy:", "baseline:"))
        )

    # -- timeseries-derived state --------------------------------------

    @property
    def latest(self) -> Optional[Dict[str, Any]]:
        return self.samples[-1] if self.samples else None

    def counter(self, name: str) -> float:
        latest = self.latest
        if latest is None:
            return 0.0
        return float(latest["counters"].get(name, 0.0))

    def gauge(self, name: str) -> Optional[float]:
        latest = self.latest
        if latest is None:
            return None
        value = latest.get("gauges", {}).get(name)
        return None if value is None else float(value)

    def rate(self, name: str, *, span: int = RATE_SPAN) -> float:
        return _rate_from_samples(self.samples[-span:], name)

    @property
    def stream_age_s(self) -> Optional[float]:
        latest = self.latest
        if latest is None or "unix_s" not in latest:
            return None
        return max(0.0, time.time() - float(latest["unix_s"]))

    @property
    def finished(self) -> bool:
        return any(
            mark.get("label")
            in ("fleet.run.finished", "sweep.run.finished", "serve.run.finished")
            for mark in self.marks
        )


def _shard_span(cell: str) -> Optional[Tuple[int, int]]:
    """``"shard:lo-hi"`` → ``(lo, hi)``, else ``None``."""
    if not cell.startswith("shard:"):
        return None
    try:
        lo, hi = cell[len("shard:"):].split("-", 1)
        return int(lo), int(hi)
    except ValueError:
        return None


def _read_journal_cells(path: str) -> Dict[str, Dict[str, Any]]:
    """Parse a sweep/fleet journal read-only, tolerating torn tails."""
    cells: Dict[str, Dict[str, Any]] = {}
    with open(path) as handle:
        raw_lines = handle.readlines()
    for index, raw in enumerate(raw_lines):
        if index == len(raw_lines) - 1 and not raw.endswith("\n"):
            break
        stripped = raw.strip()
        if not stripped:
            continue
        try:
            document = json.loads(stripped)
        except json.JSONDecodeError:
            continue
        if document.get("kind") == "cell" and "cell" in document:
            cells[document["cell"]] = document.get("payload") or {}
    return cells


def snapshot_run_dir(
    run_dir: str,
    *,
    journal: Optional[str] = None,
    timeseries: Optional[str] = None,
    tail: Optional[TimeSeriesTail] = None,
) -> RunSnapshot:
    """One read-only parse of a run directory's observable state.

    Pass a persistent :class:`~repro.obs.timeline.TimeSeriesTail` (as
    the refreshing watch loop does) to read only the bytes appended
    since the previous frame instead of re-parsing the whole stream;
    without one, a throwaway tail reads the file from the top.
    """
    if not os.path.isdir(run_dir):
        raise ObservabilityError(f"{run_dir!r} is not a directory")
    snapshot = RunSnapshot(run_dir=run_dir)

    journal_path = journal
    if journal_path is None:
        for name in JOURNAL_NAMES:
            candidate = os.path.join(run_dir, name)
            if os.path.exists(candidate):
                journal_path = candidate
                break
    if journal_path is not None and os.path.exists(journal_path):
        snapshot.journal_path = journal_path
        snapshot.journal_cells = _read_journal_cells(journal_path)

    if tail is None:
        tail = TimeSeriesTail(
            timeseries or os.path.join(run_dir, "timeseries.jsonl")
        )
    try:
        tail.poll()
    except ObservabilityError:
        pass  # header not landed (or not a stream) yet: waiting frame
    if tail.header is not None:
        snapshot.ts_meta = tail.header.get("meta", {})
        snapshot.samples = tail.samples
        snapshot.marks = tail.marks
    return snapshot


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _eta(remaining: float, rate: float) -> str:
    if rate <= 0 or remaining <= 0:
        return "--"
    seconds = remaining / rate
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_frame(snapshot: RunSnapshot) -> str:
    """Render one dashboard frame (pure text — also the ``--once`` body)."""
    lines: List[str] = []
    job = snapshot.ts_meta.get("job", "run")
    lines.append(f"{job} run · {snapshot.run_dir}")
    if snapshot.ts_meta:
        detail = " ".join(
            f"{key}={snapshot.ts_meta[key]}"
            for key in sorted(snapshot.ts_meta)
            if key != "job"
        )
        if detail:
            lines.append(f"job       {detail}")

    if not snapshot.samples and not snapshot.journal_cells:
        lines.append("waiting   no journal or timeseries yet — is the run up?")
        return "\n".join(lines)

    if job == "serve":
        active = snapshot.gauge("serve.sessions.active")
        lines.append(
            f"sessions  active {int(active) if active is not None else 0}"
            f" · opened {int(snapshot.counter('serve.sessions.opened'))}"
            f" · closed {int(snapshot.counter('serve.sessions.closed'))}"
        )
        age = snapshot.stream_age_s
        age_part = f"   stream age {age:.1f}s" if age is not None else ""
        lines.append(
            f"windows   {int(snapshot.counter('serve.windows'))} ingested   "
            f"{snapshot.rate('serve.windows'):.1f}/s{age_part}"
        )
        shed = int(snapshot.counter("serve.windows.shed"))
        lines.append(
            f"decisions {int(snapshot.counter('serve.decisions'))}"
            + (f" · shed {shed}" if shed else "")
        )

    total_users = snapshot.gauge("fleet.total_users")
    total_shards = snapshot.gauge("fleet.total_shards")
    total_cells = snapshot.gauge("sweep.total_cells")
    done_users = snapshot.done_users
    done_shards = snapshot.done_shards
    done_cells = snapshot.done_cells
    if not snapshot.journal_cells:
        # No journal: fall back to the progress counters.  These count
        # simulated work only, so a resumed run reads lower here.
        done_users = int(snapshot.counter("fleet.progress.users"))
        done_shards = int(snapshot.counter("fleet.progress.shards"))
        done_cells = int(snapshot.counter("sweep.progress.cells"))

    if total_users and total_users > 0:
        fraction = done_users / total_users
        lines.append(
            f"progress  {_bar(fraction)}  "
            f"{done_users}/{int(total_users)} users ({100 * fraction:.1f}%)"
        )
        hits = int(snapshot.counter("fleet.journal.hit"))
        shard_total = f"/{int(total_shards)}" if total_shards else ""
        lines.append(
            f"shards    {done_shards}{shard_total} done ({hits} from journal)"
        )
        rate = snapshot.rate("fleet.progress.users")
        eta = _eta(total_users - done_users, rate)
        age = snapshot.stream_age_s
        age_part = f"   stream age {age:.1f}s" if age is not None else ""
        lines.append(f"rate      {rate:.1f} users/s   ETA {eta}{age_part}")
    elif done_cells or total_cells:
        cell_total = f"/{int(total_cells)}" if total_cells else ""
        fraction = done_cells / total_cells if total_cells else 0.0
        lines.append(
            f"progress  {_bar(fraction)}  {done_cells}{cell_total} cells"
            + (f" ({100 * fraction:.1f}%)" if total_cells else "")
        )
        rate = snapshot.rate("sweep.progress.cells")
        eta = _eta((total_cells or 0) - done_cells, rate)
        lines.append(f"rate      {rate:.2f} cells/s   ETA {eta}")

    beat = snapshot.gauge("resilience.heartbeat")
    if beat is not None:
        inflight = snapshot.gauge("resilience.inflight")
        queue = snapshot.gauge("resilience.queue_depth")
        lines.append(
            f"workers   heartbeat #{int(beat)}"
            + (f" · in-flight {int(inflight)}" if inflight is not None else "")
            + (f" · queue {int(queue)}" if queue is not None else "")
        )

    age = snapshot.stream_age_s
    if snapshot.finished:
        lines.append("state     finished")
    elif age is not None and age > STALE_AFTER_S:
        lines.append(
            f"state     STALE — no sample for {age:.0f}s "
            f"(writer hung, crashed, or just done?)"
        )

    incidents = [
        f"{name.split('.', 1)[1]}={int(snapshot.counter(name))}"
        for name in _INCIDENTS
        if snapshot.counter(name) > 0
    ]
    lines.append(
        "incidents " + (" ".join(incidents) if incidents else "none")
    )

    recent_marks = snapshot.marks[-3:]
    if recent_marks:
        rendered = " · ".join(
            f"{mark['t_s']:.1f}s {mark['label']}" for mark in recent_marks
        )
        lines.append(f"marks     {rendered}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.watch",
        description="Live dashboard over an in-flight run directory.",
    )
    parser.add_argument("run_dir", help="directory with journal + timeseries")
    parser.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh seconds"
    )
    parser.add_argument(
        "--journal", default=None, help="journal path (default: autodetect)"
    )
    parser.add_argument(
        "--timeseries",
        default=None,
        help="timeseries path (default: RUN_DIR/timeseries.jsonl)",
    )
    args = parser.parse_args(argv)

    # One tail across frames: each refresh reads only the bytes the
    # writer appended since the previous frame.
    tail = TimeSeriesTail(
        args.timeseries or os.path.join(args.run_dir, "timeseries.jsonl")
    )

    def frame() -> str:
        snapshot = snapshot_run_dir(args.run_dir, journal=args.journal, tail=tail)
        return render_frame(snapshot)

    try:
        if args.once:
            print(frame())
            return 0
        use_ansi = sys.stdout.isatty()
        while True:
            text = frame()
            if use_ansi:
                # Clear + home; the frame fully repaints the screen.
                sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
                sys.stdout.flush()
            else:
                print(text)
                print("--")
            time.sleep(args.interval)
    except ObservabilityError as error:
        print(f"error: {error}")
        return 1
    except KeyboardInterrupt:
        print()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
