"""Benchmark the online serving path: identity gate + sessions/core.

Exercises ``repro.serve`` end to end against the standard MHEALTH-like
experiment and writes the machine-readable results to
``benchmarks/results/BENCH_serve.json``:

1. **Identity** — one lockstep :func:`live_session` per policy in the
   grid (RR, AAS, AAS-R, Origin); the served decision stream *and*
   active-set stream must be byte-identical to the offline
   ``HARExperiment.run`` reference.
2. **Replay identity** — a prerecorded :class:`ReplayTape` pipelined
   through the server under the ``block`` overload policy must
   reproduce its expected labels/actives with zero mismatches.
3. **Headline** — :func:`run_load` drives ``--sessions`` concurrent
   replay sessions (>= 100 by default) through one in-process server
   and reports **sessions/core**: how many always-on devices one CPU
   core can serve in real time, given one window every
   ``window_duration_s`` (2.56 s) per device.
4. **Shed accounting** — a deliberately slow ``shed``-mode server must
   shed at least one window and satisfy ``decisions + shed == windows``.

``--smoke`` shrinks the horizon/session count so CI finishes quickly
and leaves the committed JSON untouched unless ``--output`` is given;
the identity, replay and accounting gates all still apply.

Run with ``PYTHONPATH=src python benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys

from repro.core.policies import aas_policy, aasr_policy, origin_policy, rr_policy
from repro.serve.client import live_session, record_tape, replay_session, run_load
from repro.serve.server import ServeServer
from repro.serve.session import EngineCatalog, ServeProfile
from repro.sim.experiment import HARExperiment, SimulationConfig

try:
    from benchmarks.runmeta import WallClock, write_stamped_json
except ImportError:  # invoked as a script: sibling import
    from runmeta import WallClock, write_stamped_json

DEFAULT_OUTPUT = os.path.join(os.path.dirname(__file__), "results", "BENCH_serve.json")


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short horizon + fewer sessions; enforce gates, skip the JSON",
    )
    parser.add_argument(
        "--sessions", type=int, default=None, help="concurrent sessions for the headline"
    )
    parser.add_argument(
        "--tapes", type=int, default=None, help="distinct device tapes to round-robin"
    )
    parser.add_argument(
        "--n-windows", type=int, default=None, help="slots per session"
    )
    parser.add_argument("--seed", type=int, default=7, help="experiment seed")
    parser.add_argument(
        "--session-seed", type=int, default=9, help="first per-session device seed"
    )
    parser.add_argument(
        "--output",
        default=None,
        help=f"JSON destination (default {DEFAULT_OUTPUT}; never written in "
        "--smoke mode unless given explicitly)",
    )
    args = parser.parse_args(argv)
    if args.sessions is None:
        args.sessions = 20 if args.smoke else 128
    if args.tapes is None:
        args.tapes = 2 if args.smoke else 4
    if args.n_windows is None:
        args.n_windows = 40 if args.smoke else 120
    return args


async def identity_leg(server, experiment, policies, seed):
    """Lockstep sessions vs offline runs: byte-identical or die."""
    rows = []
    for policy in policies:
        served = await live_session(
            "127.0.0.1", server.port, experiment, policy, seed=seed
        )
        offline = experiment.run(policy, seed=seed)
        labels = [record.predicted_label for record in offline.records]
        actives = [list(record.active_nodes) for record in offline.records]
        if served.labels != labels:
            raise SystemExit(
                f"FAIL: served decisions diverge from offline run for {policy.name}"
            )
        if served.actives != actives:
            raise SystemExit(
                f"FAIL: served schedules diverge from offline run for {policy.name}"
            )
        rows.append(
            {
                "policy": policy.name,
                "windows": len(labels),
                "decisions": sum(1 for label in served.labels if label is not None),
                "identical": True,
            }
        )
        print(f"identity: {policy.name} byte-identical over {len(labels)} windows")
    return rows


async def load_leg(server, tapes, sessions):
    """The headline: concurrent replay sessions through one server."""
    result = await replay_session("127.0.0.1", server.port, tapes[0])
    if result.mismatches:
        raise SystemExit(
            f"FAIL: replay tape produced {result.mismatches} mismatches"
        )
    print("replay: tape byte-identical under block policy")

    stats = await run_load("127.0.0.1", server.port, tapes, sessions)
    if stats.mismatches:
        raise SystemExit(
            f"FAIL: {stats.mismatches} mismatches across {sessions} sessions"
        )
    if stats.shed:
        raise SystemExit(
            f"FAIL: block-policy server shed {stats.shed} windows"
        )
    return {
        "sessions": stats.sessions,
        "windows": stats.windows,
        "decisions": stats.decisions,
        "wall_s": round(stats.wall_s, 3),
        "windows_per_s": round(stats.windows_per_s, 1),
        "sessions_per_core": round(stats.sessions_per_core, 1),
        "mismatches": 0,
    }


async def shed_leg(catalog, tape):
    """A slow worker under ``shed`` must account for every window."""
    server = ServeServer(
        catalog,
        overload="shed",
        queue_size=4,
        shed_watermark=1,
        worker_pause_s=0.002,
    )
    await server.start()
    try:
        result = await replay_session(
            "127.0.0.1", server.port, tape, check=False
        )
    finally:
        await server.stop()
    shed = sum(result.shed)
    if shed == 0:
        raise SystemExit("FAIL: slow shed-mode server shed nothing")
    if result.stats["decisions"] + result.stats["shed"] != result.stats["windows"]:
        raise SystemExit(
            f"FAIL: shed accounting leaks windows ({result.stats})"
        )
    print(
        f"shed: {shed}/{len(result.shed)} windows shed, accounting exact"
    )
    return {
        "windows": result.stats["windows"],
        "decisions": result.stats["decisions"],
        "shed": result.stats["shed"],
        "accounting_exact": True,
    }


async def run_bench(args, experiment, policies):
    catalog = EngineCatalog([ServeProfile.from_experiment("default", experiment)])
    server = ServeServer(catalog)
    await server.start()
    try:
        identity = await identity_leg(
            server, experiment, policies, args.session_seed
        )
        tapes = [
            record_tape(
                experiment, origin_policy(6), seed=args.session_seed + index
            )
            for index in range(args.tapes)
        ]
        load = await load_leg(server, tapes, args.sessions)
    finally:
        await server.stop()
    shed = await shed_leg(catalog, tapes[0])
    return identity, load, shed


def main(argv=None) -> int:
    args = parse_args(argv)
    print(
        f"serve bench: {args.sessions} sessions, {args.n_windows} windows, "
        f"{args.tapes} tapes" + (" [smoke]" if args.smoke else "")
    )
    with WallClock() as total_clock:
        config = SimulationConfig(n_windows=args.n_windows)
        experiment = HARExperiment.standard_mhealth(seed=args.seed, config=config)
        policies = [rr_policy(3), aas_policy(6), aasr_policy(6), origin_policy(6)]
        identity, load, shed = asyncio.run(run_bench(args, experiment, policies))

    print(
        f"headline: {load['sessions']} concurrent sessions, "
        f"{load['windows_per_s']} windows/s -> "
        f"{load['sessions_per_core']} sessions/core"
    )

    payload = {
        "bench": "serve",
        "config": {
            "sessions": args.sessions,
            "tapes": args.tapes,
            "n_windows": args.n_windows,
            "experiment_seed": args.seed,
            "session_seed": args.session_seed,
            "smoke": args.smoke,
        },
        "sessions_per_core": load["sessions_per_core"],
        "identity": identity,
        "load": load,
        "shed": shed,
    }
    output = args.output
    if output is None and not args.smoke:
        output = DEFAULT_OUTPUT
    if output is not None:
        write_stamped_json(output, payload, wall_time_s=total_clock.elapsed_s)
        print(f"wrote {output}")
    print(f"total wall time {total_clock.elapsed_s:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
