"""Loss functions."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ModelError
from repro.nn.layers.activations import softmax


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class labels.

    Operates on raw logits; combining softmax and the log-likelihood
    keeps the gradient the numerically benign ``p - onehot``.

    Parameters
    ----------
    label_smoothing:
        Optional smoothing mass spread uniformly over the other classes.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        if not 0.0 <= label_smoothing < 1.0:
            raise ModelError(f"label_smoothing must be in [0, 1), got {label_smoothing}")
        self.label_smoothing = float(label_smoothing)
        self._cached_probs: Optional[np.ndarray] = None
        self._cached_targets: Optional[np.ndarray] = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch; caches what backward needs."""
        if logits.ndim != 2:
            raise ModelError(f"logits must be (batch, classes), got shape {logits.shape}")
        targets = np.asarray(targets, dtype=np.int64)
        if targets.ndim != 1 or targets.shape[0] != logits.shape[0]:
            raise ModelError(
                f"targets must be (batch,) ints, got shape {targets.shape}"
            )
        n_classes = logits.shape[1]
        if targets.min() < 0 or targets.max() >= n_classes:
            raise ModelError("target labels out of range")

        probs = softmax(logits, axis=1)
        target_dist = self._target_distribution(targets, n_classes)
        log_probs = np.log(np.clip(probs, 1e-12, None))
        loss = -float((target_dist * log_probs).sum(axis=1).mean())
        self._cached_probs = probs
        self._cached_targets = target_dist
        return loss

    def backward(self) -> np.ndarray:
        """dL/dlogits for the last :meth:`forward` call."""
        if self._cached_probs is None:
            raise ModelError("backward() before forward()")
        batch = self._cached_probs.shape[0]
        return (self._cached_probs - self._cached_targets) / batch

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)

    def _target_distribution(self, targets: np.ndarray, n_classes: int) -> np.ndarray:
        one_hot = np.zeros((targets.shape[0], n_classes), dtype=np.float64)
        one_hot[np.arange(targets.shape[0]), targets] = 1.0
        if self.label_smoothing == 0.0:
            return one_hot
        smooth = self.label_smoothing
        return one_hot * (1.0 - smooth) + smooth / n_classes
