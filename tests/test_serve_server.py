"""Asyncio serving server: concurrency, backpressure, drain, dashboards."""

from __future__ import annotations

import asyncio
import os

import pytest

from repro.core.policies import origin_policy
from repro.errors import ConfigurationError, ServeError
from repro.obs.observer import Observability
from repro.obs.runs import RunRegistry
from repro.obs.watch import render_frame, snapshot_run_dir
from repro.serve.client import (
    live_session,
    record_tape,
    replay_session,
    run_load,
)
from repro.serve.protocol import read_frame, write_frame
from repro.serve.server import ServeServer
from repro.serve.session import EngineCatalog, ServeProfile


@pytest.fixture(scope="module")
def catalog(tiny_experiment):
    return EngineCatalog(
        [ServeProfile.from_experiment("default", tiny_experiment)]
    )


@pytest.fixture(scope="module")
def tape(tiny_experiment):
    return record_tape(tiny_experiment, origin_policy(6), seed=9)


def with_server(catalog, body, **server_kwargs):
    """Start a server, run ``body(server)``, always drain cleanly."""

    async def go():
        server = ServeServer(catalog, **server_kwargs)
        await server.start()
        try:
            result = await body(server)
        finally:
            await server.stop()
        orphans = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        return result, server, orphans

    return asyncio.run(go())


class TestIdentity:
    def test_live_session_matches_offline_run(self, catalog, tiny_experiment):
        policy = origin_policy(6)

        async def body(server):
            return await live_session(
                "127.0.0.1", server.port, tiny_experiment, policy, seed=9
            )

        result, _, _ = with_server(catalog, body)
        offline = tiny_experiment.run(policy, seed=9)
        assert result.labels == [r.predicted_label for r in offline.records]
        assert result.actives == [list(r.active_nodes) for r in offline.records]
        assert not any(result.shed)

    def test_concurrent_replay_sessions_byte_identical(self, catalog, tape):
        async def body(server):
            return await run_load("127.0.0.1", server.port, [tape], 10)

        stats, server, _ = with_server(catalog, body, obs=Observability())
        assert stats.sessions == 10
        assert stats.mismatches == 0
        assert stats.shed == 0  # block policy: backpressure, never shed
        assert stats.windows == 10 * tape.n_windows
        counters = server.stats()
        assert counters["serve.windows"] == stats.windows
        assert counters["serve.decisions"] == stats.windows
        assert counters["serve.sessions.opened"] == 10
        assert counters["serve.sessions.closed"] == 10


class TestBackpressure:
    def test_slow_shed_server_accounts_for_every_window(self, catalog, tape):
        async def body(server):
            return await replay_session(
                "127.0.0.1", server.port, tape, check=False
            )

        result, server, _ = with_server(
            catalog,
            body,
            overload="shed",
            queue_size=4,
            shed_watermark=1,
            worker_pause_s=0.002,
            obs=Observability(),
        )
        shed = sum(result.shed)
        assert shed > 0
        assert result.stats["windows"] == tape.n_windows
        assert result.stats["decisions"] + result.stats["shed"] == tape.n_windows
        assert server.stats()["serve.windows.shed"] == shed
        # Shed decisions still carry the next active set: the device's
        # schedule never stalls.
        assert len(result.actives) == tape.n_windows

    def test_constructor_validation(self, catalog):
        with pytest.raises(ConfigurationError):
            ServeServer(catalog, overload="panic")
        with pytest.raises(ConfigurationError):
            ServeServer(catalog, queue_size=0)
        with pytest.raises(ConfigurationError):
            ServeServer(catalog, shed_watermark=-1)
        with pytest.raises(ConfigurationError):
            ServeServer(catalog, worker_pause_s=-0.5)

    def test_port_unavailable_before_start(self, catalog):
        with pytest.raises(ServeError, match="not started"):
            ServeServer(catalog).port


class TestLifecycle:
    def test_graceful_drain_leaves_no_orphan_tasks(self, catalog, tape):
        async def body(server):
            return await run_load("127.0.0.1", server.port, [tape], 4)

        _, _, orphans = with_server(catalog, body)
        assert orphans == []

    def test_protocol_violation_answered_then_closed(self, catalog, tape):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            try:
                await write_frame(writer, tape.windows[0])  # before hello
                error = await read_frame(reader)
                assert error["type"] == "error"
                assert "hello" in error["message"]
                assert await read_frame(reader) is None  # server hung up
            finally:
                writer.close()
            return error

        with_server(catalog, body)

    def test_malformed_bytes_drop_connection_not_server(self, catalog, tape):
        async def body(server):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"\x00\x00\x00\x04hoho")
            await writer.drain()
            error = await read_frame(reader)
            assert error["type"] == "error"
            writer.close()
            # The server survives to serve a real session.
            return await replay_session("127.0.0.1", server.port, tape)

        result, _, _ = with_server(catalog, body)
        assert result.mismatches == 0


class TestObservability:
    def test_run_dir_registry_and_watch_frame(self, catalog, tape, tmp_path):
        run_dir = str(tmp_path / "serve-run")
        registry = RunRegistry(str(tmp_path / "registry"))

        async def body(server):
            return await run_load("127.0.0.1", server.port, [tape], 3)

        _, server, _ = with_server(
            catalog,
            body,
            run_dir=run_dir,
            registry=registry,
            session_traces=True,
        )
        assert os.path.exists(os.path.join(run_dir, "timeseries.jsonl"))

        # Registered for cross-run comparison, salient counter included.
        assert server.run_id is not None
        record = registry.load(server.run_id)
        assert record.kind == "serve"
        assert record.counters["serve.windows"] == 3 * tape.n_windows
        assert "serve.windows" in record.headline()

        # Per-session decision traces (the offline runs' event kinds).
        sessions_dir = os.path.join(run_dir, "sessions")
        traces = sorted(os.listdir(sessions_dir))
        assert len(traces) == 3

        # The golden --once frame: serve-specific dashboard lines.
        frame = render_frame(snapshot_run_dir(run_dir))
        assert frame.splitlines()[0].startswith("serve run ·")
        assert "sessions  active 0 · opened 3 · closed 3" in frame
        assert "windows   " in frame and "ingested" in frame
        assert f"decisions {3 * tape.n_windows}" in frame
        marks = [
            mark["label"]
            for mark in snapshot_run_dir(run_dir).marks
        ]
        assert marks[0] == "serve.run.started"
        assert marks[-1] == "serve.run.finished"
