"""Energy-harvesting substrate.

The paper powers each sensor node from harvested WiFi RF energy using a
real office power trace (from ResIRCA, HPCA'20) and a non-volatile
processor (NVP) that preserves inference progress across power failures.
This package simulates that stack:

* :mod:`repro.energy.traces` — Markov-modulated bursty RF power traces
  (quiet/active/burst office states, log-normal fading, per-location
  gain, correlated across nodes sharing one office);
* :mod:`repro.energy.harvester` — harvester front-end (efficiency, gain);
* :mod:`repro.energy.storage` — capacitor energy buffer with leakage;
* :mod:`repro.energy.nvp` — intermittent compute with checkpointing;
* :mod:`repro.energy.budget` — power-budget helpers for pruning.
"""

from repro.energy.budget import average_power_budget, inference_energy_budget
from repro.energy.harvester import Harvester
from repro.energy.nvp import NonVolatileProcessor, TaskState
from repro.energy.storage import Capacitor
from repro.energy.traces import OfficeState, PowerTrace, PowerTraceGenerator

__all__ = [
    "PowerTrace",
    "PowerTraceGenerator",
    "OfficeState",
    "Harvester",
    "Capacitor",
    "NonVolatileProcessor",
    "TaskState",
    "average_power_budget",
    "inference_energy_budget",
]
