#!/usr/bin/env python
"""Compare the paper's whole policy ladder on one deployment.

Reproduces a compact Fig. 5a: plain ER-r, activity-aware scheduling,
recall, and Origin at two ER-r levels, next to both fully-powered
baselines — then prints the Fig. 1 motivation numbers for the same
energy environment.

Run:  python examples/policy_comparison.py
"""

from repro.core import Baseline1, Baseline2, aas_policy, aasr_policy, origin_policy, rr_policy
from repro.reporting import render_fig1_completion
from repro.sim import (
    CompletionExperiment,
    HARExperiment,
    PolicySweep,
    SimulationConfig,
)
from repro.utils.text import format_table


def main() -> None:
    experiment = HARExperiment.standard_mhealth(
        seed=7, config=SimulationConfig(n_windows=400, dwell_scale=5.0)
    )

    print("Why scheduling matters (Fig. 1 motivation):\n")
    study = CompletionExperiment(experiment).run(seed=3)
    print(render_fig1_completion(study))

    print("\nRunning the policy ladder (2 seeds each)...")
    policies = []
    for rr_length in (3, 12):
        policies += [
            rr_policy(rr_length),
            aas_policy(rr_length),
            aasr_policy(rr_length),
            origin_policy(rr_length),
        ]
    sweep = PolicySweep(experiment, n_seeds=2).run(policies, seed=21)

    rows = []
    for spec in policies:
        result = sweep.policy(spec.name)
        rows.append(
            [
                spec.name,
                result.event_accuracy * 100,
                result.completion_rate * 100,
                result.comm_energy_j * 1e6,
            ]
        )
    for baseline in (Baseline2, Baseline1):
        result = sweep.baseline(baseline.name)
        rows.append([baseline.name + " (full power)", result.overall_accuracy * 100, 100.0, 0.0])
    print()
    print(
        format_table(
            ["Policy", "Accuracy (%)", "Completion (%)", "Radio energy (uJ)"],
            rows,
            title="Policy ladder on harvested energy vs fully-powered baselines",
        )
    )
    print(
        "\nReading: each rung (AAS -> recall -> confidence matrix) adds "
        "accuracy; Origin approaches or beats the fully-powered pruned "
        "baseline while running on harvested energy only."
    )


if __name__ == "__main__":
    main()
