"""Table I — RR12-Origin vs both fully-powered baselines (MHEALTH).

Paper: RR12-Origin averages +2.72 points over Baseline-2 while running
entirely on harvested energy, and beats Baseline-1 on a minority of
activities (e.g. running).  The reproduction's shape target: Origin is
comparable to Baseline-2 (within a few points either way) and beats it
on several activities, despite the EH handicap.
"""

import pytest

from benchmarks.conftest import SEEDS
from repro.core.policies import origin_policy
from repro.reporting import render_table1
from repro.sim.sweep import PolicySweep


@pytest.fixture(scope="module")
def sweep(mhealth_exp):
    runner = PolicySweep(mhealth_exp, n_seeds=len(SEEDS), include_baselines=True)
    return runner.run([origin_policy(12)], seed=SEEDS[0])


def test_table1_render(sweep, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_result("table1_origin_vs_baselines", render_table1(sweep))


def test_table1_origin_comparable_to_bl2(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    origin = sweep.policy("RR12 Origin").event_accuracy
    bl2 = sweep.baseline("Baseline-2").overall_accuracy
    delta = (origin - bl2) * 100
    assert delta > -6.0, (
        f"RR12-Origin should be within a few points of Baseline-2, got {delta:.1f}"
    )


def test_table1_origin_wins_some_activities_vs_bl2(sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    origin = sweep.policy("RR12 Origin").per_activity_event_accuracy()
    bl2 = sweep.baseline("Baseline-2").per_activity_accuracy()
    wins = sum(1 for a in sweep.activities if origin[a] > bl2[a])
    assert wins >= 1, "Origin should beat Baseline-2 on at least one activity"


def test_table1_bl1_wins_most_activities_vs_origin(sweep, benchmark):
    """Baseline-1 (unpruned, fully powered) should still lead overall."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    origin = sweep.policy("RR12 Origin").per_activity_event_accuracy()
    bl1 = sweep.baseline("Baseline-1").per_activity_accuracy()
    bl1_wins = sum(1 for a in sweep.activities if bl1[a] > origin[a])
    assert bl1_wins >= len(sweep.activities) // 2


def test_table1_timing(benchmark, mhealth_exp):
    benchmark.pedantic(
        lambda: mhealth_exp.run(origin_policy(12), seed=2, n_windows=120),
        rounds=1,
        iterations=1,
    )
