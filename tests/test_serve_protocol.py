"""Wire protocol: framing, validation, and payload codec round trips."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.core.engine import NodeSlotState
from repro.core.policies import (
    aas_policy,
    aasr_policy,
    naive_policy,
    origin_policy,
    rr_policy,
)
from repro.errors import ServeError
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    WireReport,
    decode_frame,
    encode_frame,
    policy_from_wire,
    policy_to_wire,
    read_frame,
    report_from_wire,
    report_to_wire,
    states_from_wire,
    states_to_wire,
    validate_frame,
)


def read_from_bytes(data: bytes, *, eof: bool = True):
    """Drive read_frame against an in-memory stream (no socket)."""

    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        if eof:
            reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


class TestFraming:
    def test_encode_decode_round_trip(self):
        frame = {"type": "bye", "extra": [1, 2.5, None, "x"]}
        data = encode_frame(frame)
        (length,) = struct.unpack(">I", data[:4])
        assert length == len(data) - 4
        assert decode_frame(data[4:]) == frame

    def test_read_frame_round_trip(self):
        frame = {"type": "window", "slot": 3, "reports": []}
        assert read_from_bytes(encode_frame(frame)) == frame

    def test_clean_eof_returns_none(self):
        assert read_from_bytes(b"") is None

    def test_drop_mid_prefix_raises(self):
        with pytest.raises(ServeError, match="mid-prefix"):
            read_from_bytes(b"\x00\x00")

    def test_drop_mid_frame_raises(self):
        data = encode_frame({"type": "bye"})
        with pytest.raises(ServeError, match="mid-frame"):
            read_from_bytes(data[:-2])

    def test_oversized_length_prefix_rejected(self):
        prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
        with pytest.raises(ServeError, match="MAX_FRAME_BYTES"):
            read_from_bytes(prefix + b"x")

    def test_oversized_payload_rejected_at_encode(self):
        with pytest.raises(ServeError, match="MAX_FRAME_BYTES"):
            encode_frame({"type": "bye", "pad": "x" * (MAX_FRAME_BYTES + 1)})

    def test_undecodable_payload_rejected(self):
        with pytest.raises(ServeError, match="undecodable"):
            decode_frame(b"\xff\xfe not json")
        with pytest.raises(ServeError, match="JSON object"):
            decode_frame(b"[1, 2]")


class TestValidation:
    def test_unknown_type_rejected(self):
        with pytest.raises(ServeError, match="unknown frame type"):
            validate_frame({"type": "telnet"})
        with pytest.raises(ServeError, match="unknown frame type"):
            validate_frame({})

    def test_missing_fields_rejected(self):
        with pytest.raises(ServeError, match="missing fields"):
            validate_frame({"type": "window", "slot": 0})

    def test_expected_type_enforced(self):
        frame = {"type": "bye"}
        assert validate_frame(frame, "bye") == "bye"
        with pytest.raises(ServeError, match="expected a 'decision'"):
            validate_frame(frame, "decision")


class TestCodecs:
    @pytest.mark.parametrize(
        "policy",
        [
            naive_policy(3),
            rr_policy(6),
            aas_policy(6),
            aasr_policy(6),
            origin_policy(6),
        ],
        ids=lambda policy: policy.name,
    )
    def test_policy_round_trip(self, policy):
        assert policy_from_wire(policy_to_wire(policy)) == policy

    def test_policy_round_trip_through_json_version(self):
        # The wire dict is what a hello frame carries.
        frame = {"type": "bye", "policy": policy_to_wire(origin_policy(6))}
        decoded = decode_frame(encode_frame(frame)[4:])
        assert policy_from_wire(decoded["policy"]) == origin_policy(6)

    def test_bad_policy_rejected(self):
        with pytest.raises(ServeError, match="bad policy"):
            policy_from_wire({"name": "x"})
        with pytest.raises(ServeError, match="bad policy"):
            policy_from_wire(
                dict(policy_to_wire(rr_policy(3)), aggregation="quantum")
            )

    def test_states_round_trip_preserves_order_and_floats(self):
        states = {
            2: NodeSlotState(energy_j=1.1e-4, ready=True),
            0: NodeSlotState(energy_j=0.0, ready=False, online=False),
            1: NodeSlotState(energy_j=7.619047619047619e-05, ready=True),
        }
        wire = states_to_wire(states)
        decoded = decode_frame(encode_frame({"type": "bye", "s": wire})[4:])
        rebuilt = states_from_wire(decoded["s"])
        assert list(rebuilt) == [2, 0, 1]  # insertion order survives JSON
        assert rebuilt == states  # floats exact via shortest-repr round trip

    def test_bad_states_rejected(self):
        with pytest.raises(ServeError, match="bad node states"):
            states_from_wire({"0": [1.0]})
        with pytest.raises(ServeError, match="bad node states"):
            states_from_wire({"zero": [1.0, True, True]})

    def test_report_round_trip(self):
        report = WireReport(
            node_id=1,
            slot_index=9,
            started_slot=8,
            completed=True,
            delivered=True,
            predicted_label=4,
            confidence=0.25,
            reported_label=3,
        )
        assert report_from_wire(report_to_wire(report)) == report
        assert report.delivered_label == 3  # corruption wins over prediction

    def test_incomplete_report_round_trip(self):
        report = WireReport(
            node_id=0, slot_index=2, started_slot=2, completed=False
        )
        rebuilt = report_from_wire(report_to_wire(report))
        assert rebuilt == report
        assert rebuilt.delivered_label is None

    def test_bad_report_rejected(self):
        with pytest.raises(ServeError, match="bad report"):
            report_from_wire([1, 2, 3])
        with pytest.raises(ServeError, match="bad report"):
            report_from_wire({"node_id": 1})
        with pytest.raises(ServeError, match="bad report"):
            report_from_wire([0, 0, 0, True, True, "four-ish", None, None])


def test_protocol_version_is_one():
    # Bump PROTOCOL_VERSION (and this pin) on any frame-layout change.
    assert PROTOCOL_VERSION == 1
