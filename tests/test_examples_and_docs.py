"""Guardrails for the shipped examples and documentation."""

import ast
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


class TestExamples:
    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_parses_and_has_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {
            node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in functions, f"{path.name} must define main()"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_has_module_docstring(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} needs a docstring"

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
    def test_example_only_imports_public_api(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                top = node.module.split(".")[0]
                assert top in {"repro", "numpy", "dataclasses"}, (
                    f"{path.name} imports {node.module}"
                )


class TestDocs:
    def test_design_doc_covers_every_experiment(self):
        text = (ROOT / "DESIGN.md").read_text()
        for token in (
            "Fig. 1a",
            "Fig. 2",
            "Fig. 3",
            "Fig. 4",
            "Fig. 5a",
            "Fig. 5b",
            "Table I",
            "Fig. 6",
        ):
            assert token in text, f"DESIGN.md missing {token}"

    def test_experiments_doc_records_paper_vs_measured(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        assert "paper" in text.lower()
        assert "measured" in text.lower()
        for token in ("Fig. 1", "Fig. 5a", "Table I", "Fig. 6"):
            assert token in text

    def test_readme_quickstart_names_real_api(self):
        text = (ROOT / "README.md").read_text()
        # The README's code block must reference the actual entry points.
        from repro.core import OriginPolicy  # noqa: F401
        from repro.sim import HARExperiment  # noqa: F401

        assert "HARExperiment.standard_mhealth" in text
        assert "OriginPolicy.with_rr" in text

    def test_design_doc_confirms_paper_identity(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "matches the stated title" in text
