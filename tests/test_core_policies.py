"""Tests for PolicySpec, the policy ladder factories and baselines."""

import pytest

from repro.core.policies import (
    AggregationMode,
    Baseline1,
    Baseline2,
    OriginPolicy,
    PolicySpec,
    aas_policy,
    aasr_policy,
    naive_policy,
    origin_policy,
    rr_policy,
)
from repro.core.scheduling import (
    ActivityAwareScheduler,
    ExtendedRoundRobin,
    NaiveAllOn,
    RankTable,
)
from repro.errors import ConfigurationError

NODES = [0, 1, 2]
TABLE = RankTable({0: [0, 1, 2], 1: [1, 2, 0], 2: [2, 0, 1]})


class TestFactories:
    def test_rr_policy(self):
        spec = rr_policy(6)
        assert spec.name == "RR6"
        assert not spec.activity_aware
        assert not spec.uses_recall

    def test_aas_policy(self):
        spec = aas_policy(9)
        assert spec.activity_aware
        assert spec.aggregation is AggregationMode.LAST_INFERENCE

    def test_aasr_policy(self):
        spec = aasr_policy(12)
        assert spec.uses_recall
        assert not spec.uses_confidence_matrix

    def test_origin_policy(self):
        spec = origin_policy(12)
        assert spec.uses_confidence_matrix
        assert spec.adaptive_confidence
        assert spec.name == "RR12 Origin"

    def test_origin_static(self):
        spec = origin_policy(12, adaptive=False)
        assert not spec.adaptive_confidence
        assert "static" in spec.name

    def test_origin_policy_namespace(self):
        assert OriginPolicy.with_rr(6) == origin_policy(6)

    def test_naive_policy(self):
        spec = naive_policy()
        assert spec.all_on


class TestMakeScheduler:
    def test_rr_gives_round_robin(self):
        scheduler = rr_policy(12).make_scheduler(NODES, None)
        assert isinstance(scheduler, ExtendedRoundRobin)
        assert scheduler.cycle_length == 12

    def test_aas_gives_activity_aware(self):
        scheduler = aas_policy(12).make_scheduler(NODES, TABLE)
        assert isinstance(scheduler, ActivityAwareScheduler)
        # Plain AAS favors time-on-best-sensor: half-cycle cooldown.
        assert scheduler.cooldown_slots == 7

    def test_recall_policies_rotate_harder(self):
        scheduler = origin_policy(12).make_scheduler(NODES, TABLE)
        assert scheduler.cooldown_slots == 9

    def test_naive_gives_all_on(self):
        scheduler = naive_policy().make_scheduler(NODES, None)
        assert isinstance(scheduler, NaiveAllOn)

    def test_aas_without_table_rejected(self):
        with pytest.raises(ConfigurationError):
            aas_policy(6).make_scheduler(NODES, None)


class TestValidation:
    def test_adaptive_requires_confidence_aggregation(self):
        with pytest.raises(ConfigurationError):
            PolicySpec(
                name="bad",
                rr_length=3,
                activity_aware=True,
                aggregation=AggregationMode.MAJORITY_RECALL,
                adaptive_confidence=True,
            )

    def test_naive_cannot_be_activity_aware(self):
        with pytest.raises(ConfigurationError):
            PolicySpec(
                name="bad",
                rr_length=3,
                activity_aware=True,
                aggregation=AggregationMode.LAST_INFERENCE,
                all_on=True,
            )

    def test_invalid_rr_length(self):
        with pytest.raises(ConfigurationError):
            rr_policy(0)


class TestBaselines:
    def test_baseline_specs(self):
        assert not Baseline1.pruned
        assert Baseline2.pruned
        assert Baseline1.name == "Baseline-1"
        assert Baseline2.name == "Baseline-2"
