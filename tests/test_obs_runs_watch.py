"""Run registry, live watcher, and bench-trajectory gate tests."""

from __future__ import annotations

import hashlib
import json
import os

import pytest

from repro.errors import ObservabilityError
from repro.obs.bench import (
    DEFAULT_TOLERANCE,
    TRAJECTORY_NAME,
    check,
    extract_headlines,
    update,
)
from repro.obs.bench import main as bench_main
from repro.obs.metrics import MetricsRegistry
from repro.obs.runs import DEFAULT_ROOT, RunRegistry, default_root
from repro.obs.runs import main as runs_main
from repro.obs.timeline import TimeSeriesRecorder
from repro.obs.watch import (
    RunSnapshot,
    _shard_span,
    render_frame,
    snapshot_run_dir,
)
from repro.obs.watch import main as watch_main


def _registry_with_two_runs(root):
    registry = RunRegistry(str(root))
    metrics_a = MetricsRegistry()
    metrics_a.inc("fleet.users", 100)
    metrics_a.inc("fleet.shards", 4)
    registry.record(kind="fleet", metrics=metrics_a, run_id="a", meta={"users": 100})
    metrics_b = MetricsRegistry()
    metrics_b.inc("fleet.users", 100)
    metrics_b.inc("fleet.shards", 8)
    metrics_b.inc("resilience.retries", 2)
    registry.record(kind="fleet", metrics=metrics_b, run_id="b")
    return registry


class TestRunRegistry:
    def test_record_and_load_round_trip(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "reg"))
        metrics = MetricsRegistry()
        metrics.inc("fleet.users", 42)
        metrics.gauge("fleet.total_users").set(42)
        run_id = registry.record(
            kind="fleet",
            metrics=metrics,
            meta={"policy": "origin-12"},
            timeseries=str(tmp_path / "ts.jsonl"),
            run_dir=str(tmp_path),
        )
        record = registry.load(run_id)
        assert record.kind == "fleet"
        assert record.damaged is None
        assert record.meta == {"policy": "origin-12"}
        assert record.counters == {"fleet.users": 42.0}
        assert record.gauges == {"fleet.total_users": 42}
        assert record.timeseries.endswith("ts.jsonl")
        assert "fleet.users=42" in record.headline()

    def test_fresh_ids_never_collide(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "reg"))
        first = registry.record(kind="fleet", metrics={})
        second = registry.record(kind="fleet", metrics={})
        assert first != second
        assert {r.run_id for r in registry.ls()} == {first, second}

    def test_duplicate_and_invalid_ids_rejected(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "reg"))
        registry.record(kind="fleet", metrics={}, run_id="x")
        with pytest.raises(ObservabilityError, match="already registered"):
            registry.record(kind="fleet", metrics={}, run_id="x")
        with pytest.raises(ObservabilityError, match="invalid run id"):
            registry.record(kind="fleet", metrics={}, run_id=f"a{os.sep}b")

    def test_damaged_entry_listed_not_fatal(self, tmp_path):
        registry = RunRegistry(str(tmp_path / "reg"))
        registry.record(kind="fleet", metrics={}, run_id="ok")
        broken = tmp_path / "reg" / "broken"
        broken.mkdir()
        (broken / "runmeta.json").write_text("{not json")
        records = {r.run_id: r for r in registry.ls()}
        assert records["ok"].damaged is None
        assert records["broken"].damaged is not None
        assert "DAMAGED" in records["broken"].headline()
        with pytest.raises(ObservabilityError, match="damaged"):
            registry.diff("ok", "broken")

    def test_diff_changed_counters_only(self, tmp_path):
        registry = _registry_with_two_runs(tmp_path / "reg")
        rows = registry.diff("a", "b")
        assert rows == [
            {"name": "fleet.shards", "a": 4.0, "b": 8.0, "delta": 4.0},
            {"name": "resilience.retries", "a": 0.0, "b": 2.0, "delta": 2.0},
        ]

    def test_default_root_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNS_DIR", raising=False)
        assert default_root() == DEFAULT_ROOT
        assert default_root("explicit") == "explicit"
        monkeypatch.setenv("REPRO_RUNS_DIR", "/elsewhere")
        assert default_root() == "/elsewhere"
        assert default_root("explicit") == "explicit"

    def test_cli_ls_info_diff(self, tmp_path, capsys):
        root = str(tmp_path / "reg")
        assert runs_main(["--root", root, "ls"]) == 0
        assert "no runs registered" in capsys.readouterr().out
        _registry_with_two_runs(root)
        assert runs_main(["--root", root, "ls"]) == 0
        out = capsys.readouterr().out
        assert "a  kind=fleet" in out and "b  kind=fleet" in out
        assert runs_main(["--root", root, "info", "a"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out and "fleet.users" in out
        assert runs_main(["--root", root, "diff", "a", "b"]) == 0
        out = capsys.readouterr().out
        assert "fleet.shards" in out and "+4" in out
        assert runs_main(["--root", root, "info", "nope"]) == 1
        assert "error:" in capsys.readouterr().out


def _write_run_dir(tmp_path, *, finished=False, journal=True):
    """Synthetic mid-flight run dir: journal + timeseries, fake clock."""
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    if journal:
        rows = [
            {"kind": "sweep-journal", "schema_version": 1, "fingerprint": "f"},
            {"kind": "cell", "cell": "shard:0-2", "payload": {}},
            {"kind": "cell", "cell": "shard:2-4", "payload": {}},
        ]
        (run_dir / "fleet.journal").write_text(
            "".join(json.dumps(r) + "\n" for r in rows)
        )
    clock_now = [50.0]
    metrics = MetricsRegistry()
    recorder = TimeSeriesRecorder(
        metrics,
        str(run_dir / "timeseries.jsonl"),
        interval_s=0.0,
        clock=lambda: clock_now[0],
        meta={"job": "fleet", "users": 8},
    )
    metrics.gauge("fleet.total_users").set(8)
    metrics.gauge("fleet.total_shards").set(4)
    metrics.counter("fleet.progress.users").inc(2)
    recorder.sample(force=True)
    clock_now[0] += 2.0
    metrics.counter("fleet.progress.users").inc(2)
    metrics.counter("resilience.retries").inc()
    metrics.gauge("resilience.heartbeat").set(3)
    metrics.gauge("resilience.inflight").set(2)
    metrics.gauge("resilience.queue_depth").set(1)
    recorder.sample(force=True)
    if finished:
        recorder.mark("fleet.run.finished")
    recorder.close(final_sample=False)
    return run_dir


def _dir_digest(path):
    digest = hashlib.md5()
    for name in sorted(os.listdir(path)):
        digest.update((path / name).read_bytes())
    return digest.hexdigest()


class TestWatch:
    def test_shard_span(self):
        assert _shard_span("shard:0-256") == (0, 256)
        assert _shard_span("policy:origin-6:3") is None
        assert _shard_span("shard:garbage") is None

    def test_snapshot_properties(self, tmp_path):
        run_dir = _write_run_dir(tmp_path)
        snapshot = snapshot_run_dir(str(run_dir))
        assert snapshot.done_shards == 2
        assert snapshot.done_users == 4
        assert snapshot.done_cells == 0
        assert snapshot.counter("fleet.progress.users") == 4.0
        assert snapshot.gauge("fleet.total_users") == 8
        assert snapshot.rate("fleet.progress.users") == pytest.approx(1.0)
        assert not snapshot.finished
        assert snapshot.ts_meta == {"job": "fleet", "users": 8}

    def test_snapshot_rejects_non_directory(self, tmp_path):
        with pytest.raises(ObservabilityError, match="not a directory"):
            snapshot_run_dir(str(tmp_path / "missing"))

    def test_render_frame_golden_fragments(self, tmp_path):
        run_dir = _write_run_dir(tmp_path)
        frame = render_frame(snapshot_run_dir(str(run_dir)))
        assert frame.startswith(f"fleet run · {run_dir}")
        assert "job       users=8" in frame
        assert "4/8 users (50.0%)" in frame
        assert "shards    2/4 done (0 from journal)" in frame
        assert "rate      1.0 users/s   ETA 4s" in frame
        assert "workers   heartbeat #3 · in-flight 2 · queue 1" in frame
        assert "incidents retries=1" in frame

    def test_finished_state_from_mark(self, tmp_path):
        run_dir = _write_run_dir(tmp_path, finished=True)
        snapshot = snapshot_run_dir(str(run_dir))
        assert snapshot.finished
        frame = render_frame(snapshot)
        assert "state     finished" in frame
        assert "fleet.run.finished" in frame

    def test_watching_never_mutates_the_run_dir(self, tmp_path):
        run_dir = _write_run_dir(tmp_path)
        # Simulate a writer mid-append: torn journal tail, torn sample.
        with open(run_dir / "fleet.journal", "a") as handle:
            handle.write('{"kind": "cell", "cell": "shard:4-')
        with open(run_dir / "timeseries.jsonl", "a") as handle:
            handle.write('{"kind": "timeseries.sa')
        before = _dir_digest(run_dir)
        snapshot = snapshot_run_dir(str(run_dir))
        render_frame(snapshot)
        assert _dir_digest(run_dir) == before
        assert snapshot.done_shards == 2  # torn cell skipped, not fatal

    def test_waiting_frame_for_empty_dir(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        frame = render_frame(snapshot_run_dir(str(empty)))
        assert "waiting" in frame

    def test_progress_counters_without_journal(self, tmp_path):
        run_dir = _write_run_dir(tmp_path, journal=False)
        frame = render_frame(snapshot_run_dir(str(run_dir)))
        # Journal-less: progress falls back to the stream counters.
        assert "4/8 users (50.0%)" in frame

    def test_cli_once_renders_and_exits_zero(self, tmp_path, capsys):
        run_dir = _write_run_dir(tmp_path)
        assert watch_main([str(run_dir), "--once"]) == 0
        out = capsys.readouterr().out
        assert "fleet run ·" in out and "incidents" in out

    def test_sweep_cells_branch(self):
        snapshot = RunSnapshot(run_dir="x")
        snapshot.samples = [
            {
                "t_s": 0.0,
                "unix_s": 0.0,
                "counters": {"sweep.progress.cells": 3.0},
                "gauges": {"sweep.total_cells": 6},
            }
        ]
        frame = render_frame(snapshot)
        assert "3/6 cells (50.0%)" in frame


def _write_bench_files(results_dir):
    results_dir.mkdir(parents=True, exist_ok=True)
    kernel = {
        "bench": "vectorized_slot_kernel",
        "speedup": {"physics_kernel_vs_scalar": 11.81},
        "meta": {"git_sha": "abc1234", "timestamp_utc": "2026-01-01T00:00:00Z"},
    }
    fleet = {
        "benchmark": "fleet",  # the one BENCH file with the old key
        "users_per_second": 180.0,
        "speedup": {"speedup": 3.16},
        "meta": {"git_sha": "abc1234", "timestamp_utc": "2026-01-01T00:00:00Z"},
    }
    chaos = {  # no meta block, like the oldest committed BENCH file
        "bench": "sweep_resilience_chaos",
        "supervision": {"overhead_fraction": 0.02},
    }
    for name, doc in (
        ("BENCH_kernel.json", kernel),
        ("BENCH_fleet.json", fleet),
        ("BENCH_chaos.json", chaos),
    ):
        (results_dir / name).write_text(json.dumps(doc))
    return results_dir


class TestBenchTrajectory:
    def test_extract_headlines_both_name_keys(self, tmp_path):
        results = _write_bench_files(tmp_path / "results")
        kernel = extract_headlines(str(results / "BENCH_kernel.json"))
        assert kernel["bench"] == "vectorized_slot_kernel"
        assert kernel["git_sha"] == "abc1234"
        assert kernel["headlines"] == {"speedup.physics_kernel_vs_scalar": 11.81}
        fleet = extract_headlines(str(results / "BENCH_fleet.json"))
        assert fleet["bench"] == "fleet"
        assert fleet["headlines"] == {
            "users_per_second": 180.0,
            "speedup.speedup": 3.16,
        }
        chaos = extract_headlines(str(results / "BENCH_chaos.json"))
        assert chaos["git_sha"] is None  # meta-less file still records

    def test_extract_rejects_unknown_and_incomplete(self, tmp_path):
        unknown = tmp_path / "BENCH_mystery.json"
        unknown.write_text(json.dumps({"bench": "mystery"}))
        with pytest.raises(ObservabilityError, match="no HEADLINES entry"):
            extract_headlines(str(unknown))
        partial = tmp_path / "BENCH_partial.json"
        partial.write_text(json.dumps({"bench": "fleet", "users_per_second": 1.0}))
        with pytest.raises(ObservabilityError, match="speedup.speedup"):
            extract_headlines(str(partial))

    def test_update_appends_once(self, tmp_path):
        results = _write_bench_files(tmp_path / "results")
        trajectory = str(results / TRAJECTORY_NAME)
        first = update(str(results), trajectory)
        assert {r["bench"] for r in first} == {
            "vectorized_slot_kernel",
            "fleet",
            "sweep_resilience_chaos",
        }
        assert update(str(results), trajectory) == []  # idempotent
        with open(trajectory) as handle:
            assert len(handle.readlines()) == 3

    def test_update_appends_again_when_numbers_move(self, tmp_path):
        results = _write_bench_files(tmp_path / "results")
        trajectory = str(results / TRAJECTORY_NAME)
        update(str(results), trajectory)
        doc = json.loads((results / "BENCH_kernel.json").read_text())
        doc["speedup"]["physics_kernel_vs_scalar"] = 12.5
        (results / "BENCH_kernel.json").write_text(json.dumps(doc))
        appended = update(str(results), trajectory)
        assert [r["bench"] for r in appended] == ["vectorized_slot_kernel"]

    def test_check_passes_without_history_and_within_tolerance(self, tmp_path):
        results = _write_bench_files(tmp_path / "results")
        trajectory = str(results / TRAJECTORY_NAME)
        assert check(str(results), trajectory) == []  # no ledger at all
        update(str(results), trajectory)
        # Only the current identity in the ledger: still no baseline.
        assert check(str(results), trajectory) == []

    def test_check_flags_higher_metric_drop(self, tmp_path):
        results = _write_bench_files(tmp_path / "results")
        trajectory = str(results / TRAJECTORY_NAME)
        golden_past = {
            "schema_version": 1,
            "bench": "vectorized_slot_kernel",
            "source": "BENCH_kernel.json",
            "git_sha": "older00",
            "timestamp_utc": "2025-12-01T00:00:00Z",
            "headlines": {"speedup.physics_kernel_vs_scalar": 20.0},
        }
        with open(trajectory, "w") as handle:
            handle.write(json.dumps(golden_past) + "\n")
        regressions = check(str(results), trajectory)
        assert len(regressions) == 1
        assert "physics_kernel_vs_scalar regressed 20 -> 11.81" in regressions[0]
        # Wide tolerance swallows the same drop.
        assert check(str(results), trajectory, tolerance=0.9) == []

    def test_check_flags_lower_metric_climb(self, tmp_path):
        results = _write_bench_files(tmp_path / "results")
        trajectory = str(results / TRAJECTORY_NAME)
        golden_past = {
            "schema_version": 1,
            "bench": "sweep_resilience_chaos",
            "source": "BENCH_chaos.json",
            "git_sha": "older00",
            "timestamp_utc": "2025-12-01T00:00:00Z",
            "headlines": {"supervision.overhead_fraction": -0.2},
        }
        with open(trajectory, "w") as handle:
            handle.write(json.dumps(golden_past) + "\n")
        regressions = check(str(results), trajectory)
        assert len(regressions) == 1
        assert "overhead_fraction regressed -0.2 -> 0.02" in regressions[0]

    def test_cli_update_then_gate(self, tmp_path, capsys):
        results = _write_bench_files(tmp_path / "results")
        assert bench_main(["--results-dir", str(results), "update"]) == 0
        assert "appended" in capsys.readouterr().out
        assert bench_main(["--results-dir", str(results), "check"]) == 0
        assert "no headline regressions" in capsys.readouterr().out
        doc = json.loads((results / "BENCH_kernel.json").read_text())
        doc["speedup"]["physics_kernel_vs_scalar"] = 1.0
        doc["meta"]["git_sha"] = "newer00"
        (results / "BENCH_kernel.json").write_text(json.dumps(doc))
        assert bench_main(["--results-dir", str(results), "check"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_committed_trajectory_gate_passes(self, capsys):
        """The repo's own ledger must gate green (CI runs exactly this)."""
        results = os.path.join(
            os.path.dirname(__file__), os.pardir, "benchmarks", "results"
        )
        assert bench_main(["--results-dir", results, "check"]) == 0
        out = capsys.readouterr().out
        assert "no headline regressions" in out

    def test_default_tolerance_is_sane(self):
        assert 0.0 < DEFAULT_TOLERANCE < 0.5
