"""Unit tests for repro.obs tracing: schema, tracer, JSONL round trip."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.observer import NULL_OBS, Observability
from repro.obs.schema import (
    EVENT_KINDS,
    SCHEMA_CHANGELOG,
    TRACE_SCHEMA_VERSION,
    check_schema_changelog,
    validate_event,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    read_trace,
    write_trace,
)


class TestSchema:
    def test_current_version_has_changelog_entry(self):
        check_schema_changelog()
        assert TRACE_SCHEMA_VERSION in SCHEMA_CHANGELOG

    def test_every_kind_validates_with_required_fields(self):
        for kind, fields in EVENT_KINDS.items():
            validate_event(kind, {name: 0 for name in fields})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObservabilityError):
            validate_event("no.such.kind", {})

    def test_missing_field_rejected(self):
        with pytest.raises(ObservabilityError):
            validate_event("inference.aborted", {})


class TestTracer:
    def test_emit_assigns_sequential_seq(self):
        tracer = Tracer()
        tracer.emit("window.sensed", slot=1, node_id=0)
        tracer.emit("message.dropped", slot=2, node_id=1)
        events = tracer.events
        assert [event.seq for event in events] == [0, 1]
        assert events[0].kind == "window.sensed"
        assert events[1].node_id == 1

    def test_emit_validates_when_asked(self):
        tracer = Tracer(validate=True)
        with pytest.raises(ObservabilityError):
            tracer.emit("inference.aborted", slot=1, node_id=0)  # missing reason

    def test_append_fast_path_matches_emit(self):
        a, b = Tracer(), Tracer()
        a.emit("inference.aborted", slot=3, node_id=1, reason="stale")
        b.append("inference.aborted", 3, 1, {"reason": "stale"})
        assert a.events == b.events

    def test_extend_resequences(self):
        source = Tracer()
        source.emit("window.sensed", slot=1, node_id=0)
        sink = Tracer()
        sink.emit("window.sensed", slot=0, node_id=2)
        sink.extend(source.events)
        assert [event.seq for event in sink.events] == [0, 1]
        assert sink.events[1].node_id == 0

    def test_of_kind_and_len_and_clear(self):
        tracer = Tracer()
        tracer.emit("window.sensed", slot=1, node_id=0)
        tracer.emit("message.dropped", slot=1, node_id=0)
        assert len(tracer) == 2
        assert len(tracer.of_kind("window.sensed")) == 1
        tracer.clear()
        assert len(tracer) == 0

    def test_null_tracer_is_disabled_noop(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.emit("anything.goes", bogus=1)
        NULL_TRACER.append("anything.goes", 0, 0, {})
        NULL_TRACER.extend([TraceEvent(0, "window.sensed", 1, 0, {})])
        assert NULL_TRACER.events == []
        assert isinstance(NULL_TRACER, NullTracer)


class TestRoundTrip:
    def test_write_read_round_trip(self, tmp_path):
        tracer = Tracer()
        tracer.emit("window.sensed", slot=4, node_id=2)
        tracer.emit(
            "inference.completed",
            slot=5,
            node_id=2,
            started_slot=4,
            label=3,
            confidence=0.7,
            delivered=True,
        )
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(str(path), meta={"note": "test"})
        header, events = read_trace(str(path))
        assert header["schema_version"] == TRACE_SCHEMA_VERSION
        assert header["meta"] == {"note": "test"}
        assert events == tracer.events

    def test_write_validates_malformed_events(self, tmp_path):
        tracer = Tracer()  # per-emit validation off by default ...
        tracer.emit("inference.aborted", slot=1, node_id=0)  # missing reason
        with pytest.raises(ObservabilityError):
            # ... but the serialization boundary still rejects it.
            tracer.write_jsonl(str(tmp_path / "bad.jsonl"))

    def test_read_rejects_headerless_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "not.a.header"}\n')
        with pytest.raises(ObservabilityError):
            read_trace(str(path))

    def test_read_rejects_unknown_schema_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "trace.header", "schema_version": 999, "meta": {}})
            + "\n"
        )
        with pytest.raises(ObservabilityError):
            read_trace(str(path))

    def test_write_trace_function(self, tmp_path):
        events = [TraceEvent(0, "window.sensed", 1, 0, {})]
        path = tmp_path / "t.jsonl"
        write_trace(str(path), events)
        header, back = read_trace(str(path))
        assert back == events


class TestObservability:
    def test_default_bundle_is_enabled(self):
        obs = Observability()
        assert obs.enabled and obs.tracer.enabled

    def test_null_obs_timed_is_reusable_noop(self):
        scope_a = NULL_OBS.timed("a")
        scope_b = NULL_OBS.timed("b")
        assert scope_a is scope_b  # shared singleton scope
        with scope_a:
            pass
        assert NULL_OBS.metrics.to_dict()["timers"] == {}

    def test_timed_records_wall_time(self):
        obs = Observability()
        with obs.timed("x"):
            pass
        timer = obs.metrics.timer("x")
        assert timer.calls == 1
        assert timer.total_s >= 0.0

    def test_timed_scope_is_cached_per_name(self):
        obs = Observability()
        assert obs.timed("x") is obs.timed("x")
        assert obs.timed("x") is not obs.timed("y")

    def test_export_writes_both_files(self, tmp_path):
        obs = Observability()
        obs.tracer.emit("window.sensed", slot=0, node_id=0)
        obs.metrics.inc("c")
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        obs.export(str(trace_path), str(metrics_path), meta={"k": 1})
        header, events = read_trace(str(trace_path))
        assert len(events) == 1
        with open(metrics_path) as handle:
            snapshot = json.load(handle)
        assert snapshot["counters"] == {"c": 1}
