"""Dataset containers.

:class:`LabeledWindows` is the in-memory format every model consumes:
an ``(n, channels, window)`` float32 array plus integer labels.
:class:`HARDataset` bundles one :class:`LabeledWindows` split per body
location together with the spec and synthesizer that produced them, so
downstream code (training, rank tables, confidence seeding, streaming
simulation) works from a single object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.datasets.activities import Activity
from repro.datasets.body import BodyLocation, DEPLOYMENT_ORDER
from repro.datasets.profiles import SignatureTable
from repro.datasets.subjects import SubjectProfile
from repro.datasets.synthesis import SignalSynthesizer
from repro.errors import DatasetError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset variant.

    Attributes
    ----------
    name:
        Human-readable dataset name (``"MHEALTH"`` / ``"PAMAP2"``).
    activities:
        Ordered class set; the order defines integer labels.
    locations:
        Sensor placements, in deployment (round-robin) order.
    sample_rate_hz / window_size:
        IMU sampling parameters shared by all sensors.
    signature_factory:
        Zero-argument callable producing the calibrated
        :class:`~repro.datasets.profiles.SignatureTable`.
    """

    name: str
    activities: Tuple[Activity, ...]
    signature_factory: Callable[[], SignatureTable]
    locations: Tuple[BodyLocation, ...] = DEPLOYMENT_ORDER
    sample_rate_hz: float = 50.0
    window_size: int = 128

    def __post_init__(self) -> None:
        if len(self.activities) < 2:
            raise DatasetError("a dataset needs at least two activities")
        if len(set(self.activities)) != len(self.activities):
            raise DatasetError("activities must be unique")
        if len(self.locations) < 1:
            raise DatasetError("a dataset needs at least one sensor location")

    @property
    def n_classes(self) -> int:
        """Number of activity classes."""
        return len(self.activities)

    @property
    def window_duration_s(self) -> float:
        """Duration of one window in seconds."""
        return self.window_size / self.sample_rate_hz

    def label_of(self, activity: Activity) -> int:
        """Integer label of ``activity`` in this dataset."""
        try:
            return self.activities.index(activity)
        except ValueError as error:
            raise DatasetError(f"{activity} is not part of dataset {self.name}") from error

    def activity_of(self, label: int) -> Activity:
        """Inverse of :meth:`label_of`."""
        if not 0 <= label < self.n_classes:
            raise DatasetError(f"label {label} out of range for {self.name}")
        return self.activities[label]

    def make_synthesizer(self) -> SignalSynthesizer:
        """A synthesizer configured for this dataset."""
        return SignalSynthesizer(
            self.signature_factory(),
            sample_rate_hz=self.sample_rate_hz,
            window_size=self.window_size,
        )


@dataclass
class LabeledWindows:
    """A set of labeled IMU windows for one sensor location."""

    X: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float32)
        self.y = np.asarray(self.y, dtype=np.int64)
        if self.X.ndim != 3:
            raise DatasetError(f"X must be (n, channels, window), got shape {self.X.shape}")
        if self.y.ndim != 1 or self.y.shape[0] != self.X.shape[0]:
            raise DatasetError(
                f"y must be 1-D with {self.X.shape[0]} entries, got shape {self.y.shape}"
            )

    def __len__(self) -> int:
        return int(self.X.shape[0])

    def shuffled(self, seed: SeedLike = None) -> "LabeledWindows":
        """A shuffled copy (X and y permuted together)."""
        rng = as_generator(seed)
        order = rng.permutation(len(self))
        return LabeledWindows(self.X[order], self.y[order])

    def subset(self, indices: Sequence[int]) -> "LabeledWindows":
        """Rows at ``indices``."""
        idx = np.asarray(indices, dtype=int)
        return LabeledWindows(self.X[idx], self.y[idx])

    def of_class(self, label: int) -> "LabeledWindows":
        """Only the rows labeled ``label``."""
        mask = self.y == label
        return LabeledWindows(self.X[mask], self.y[mask])

    def class_counts(self, n_classes: int) -> np.ndarray:
        """Histogram of labels over ``n_classes`` bins."""
        return np.bincount(self.y, minlength=n_classes)

    def concat(self, other: "LabeledWindows") -> "LabeledWindows":
        """Row-wise concatenation."""
        if self.X.shape[1:] != other.X.shape[1:]:
            raise DatasetError(
                f"window shapes differ: {self.X.shape[1:]} vs {other.X.shape[1:]}"
            )
        return LabeledWindows(
            np.concatenate([self.X, other.X]), np.concatenate([self.y, other.y])
        )


@dataclass
class HARDataset:
    """All splits of one dataset, per sensor location.

    Attributes
    ----------
    spec:
        The static dataset description.
    train / val / test:
        ``location -> LabeledWindows`` mappings.  ``val`` seeds the rank
        table and the confidence matrix; ``test`` is only used for final
        accuracy.
    synthesizer:
        The generator behind the data, reusable for streaming simulation.
    train_subjects / eval_subjects:
        Subject profiles used for the respective splits.
    """

    spec: DatasetSpec
    train: Mapping[BodyLocation, LabeledWindows]
    val: Mapping[BodyLocation, LabeledWindows]
    test: Mapping[BodyLocation, LabeledWindows]
    synthesizer: SignalSynthesizer
    train_subjects: List[SubjectProfile] = field(default_factory=list)
    eval_subjects: List[SubjectProfile] = field(default_factory=list)

    def __post_init__(self) -> None:
        for split_name, split in (("train", self.train), ("val", self.val), ("test", self.test)):
            for location in self.spec.locations:
                if location not in split:
                    raise DatasetError(f"{split_name} split is missing location {location}")

    @property
    def n_classes(self) -> int:
        """Number of activity classes."""
        return self.spec.n_classes

    def split(self, name: str) -> Mapping[BodyLocation, LabeledWindows]:
        """Access a split by name (``"train" | "val" | "test"``)."""
        try:
            return {"train": self.train, "val": self.val, "test": self.test}[name]
        except KeyError as error:
            raise DatasetError(f"unknown split {name!r}") from error


def synthesize_split(
    spec: DatasetSpec,
    synthesizer: SignalSynthesizer,
    subjects: Sequence[SubjectProfile],
    windows_per_activity: int,
    seed: SeedLike,
) -> Dict[BodyLocation, LabeledWindows]:
    """Generate one split: balanced classes, subjects interleaved.

    For each location, ``windows_per_activity`` windows are drawn per
    activity, cycling through ``subjects`` so every subject contributes.
    """
    if windows_per_activity < 1:
        raise DatasetError(f"windows_per_activity must be >= 1, got {windows_per_activity}")
    if not subjects:
        raise DatasetError("subjects must be non-empty")
    rng = as_generator(seed)
    split: Dict[BodyLocation, LabeledWindows] = {}
    for location in spec.locations:
        xs, ys = [], []
        for label, activity in enumerate(spec.activities):
            for index in range(windows_per_activity):
                subject = subjects[index % len(subjects)]
                xs.append(synthesizer.window(activity, location, subject, rng))
                ys.append(label)
        stacked = LabeledWindows(np.stack(xs), np.asarray(ys))
        split[location] = stacked.shuffled(rng)
    return split
