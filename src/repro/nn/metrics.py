"""Classification metrics."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.errors import ModelError


def _check_labels(y_true: np.ndarray, y_pred: np.ndarray) -> tuple:
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise ModelError(
            f"labels must be equal-length 1-D arrays, got {y_true.shape} vs {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ModelError("labels must be non-empty")
    return y_true, y_pred


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: Optional[int] = None
) -> np.ndarray:
    """Counts matrix ``C[i, j]`` = true class ``i`` predicted as ``j``."""
    y_true, y_pred = _check_labels(y_true, y_pred)
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def per_class_accuracy(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int
) -> np.ndarray:
    """Recall per class; NaN-free (classes with no samples report 0)."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    totals = matrix.sum(axis=1)
    correct = np.diag(matrix).astype(np.float64)
    return np.divide(correct, totals, out=np.zeros(n_classes), where=totals > 0)


def macro_f1(y_true: np.ndarray, y_pred: np.ndarray, n_classes: int) -> float:
    """Unweighted mean of per-class F1 scores."""
    matrix = confusion_matrix(y_true, y_pred, n_classes)
    tp = np.diag(matrix).astype(np.float64)
    fp = matrix.sum(axis=0) - tp
    fn = matrix.sum(axis=1) - tp
    precision = np.divide(tp, tp + fp, out=np.zeros(n_classes), where=(tp + fp) > 0)
    recall = np.divide(tp, tp + fn, out=np.zeros(n_classes), where=(tp + fn) > 0)
    denom = precision + recall
    f1 = np.divide(2 * precision * recall, denom, out=np.zeros(n_classes), where=denom > 0)
    return float(f1.mean())


def topk_accuracy(y_true: np.ndarray, probabilities: np.ndarray, k: int = 1) -> float:
    """Fraction of samples whose true class is in the top-``k`` probs."""
    y_true = np.asarray(y_true, dtype=np.int64)
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 2 or probs.shape[0] != y_true.shape[0]:
        raise ModelError(
            f"probabilities must be (n, classes) matching labels, got {probs.shape}"
        )
    if not 1 <= k <= probs.shape[1]:
        raise ModelError(f"k must be in [1, {probs.shape[1]}], got {k}")
    topk = np.argsort(probs, axis=1)[:, -k:]
    hits = (topk == y_true[:, None]).any(axis=1)
    return float(hits.mean())


def accuracy_by_class_report(
    y_true: np.ndarray, y_pred: np.ndarray, class_names: list
) -> Dict[str, float]:
    """``{class name: accuracy}`` plus an ``"overall"`` entry."""
    per_class = per_class_accuracy(y_true, y_pred, len(class_names))
    report = {name: float(value) for name, value in zip(class_names, per_class)}
    report["overall"] = accuracy(y_true, y_pred)
    return report
