"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.validation import (
    check_fraction,
    check_in_choices,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", value)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0.0) == 0.0

    @pytest.mark.parametrize("value", [-0.1, float("nan")])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_non_negative("x", value)


class TestCheckPositiveInt:
    def test_accepts(self):
        assert check_positive_int("n", 3) == 3

    @pytest.mark.parametrize("value", [0, -2, 1.5])
    def test_rejects(self, value):
        with pytest.raises(ConfigurationError):
            check_positive_int("n", value)


class TestCheckFraction:
    def test_inclusive_bounds(self):
        assert check_fraction("f", 0.0) == 0.0
        assert check_fraction("f", 1.0) == 1.0

    def test_exclusive_bounds(self):
        with pytest.raises(ConfigurationError):
            check_fraction("f", 0.0, inclusive=False)
        with pytest.raises(ConfigurationError):
            check_fraction("f", 1.0, inclusive=False)
        assert check_fraction("f", 0.5, inclusive=False) == 0.5

    def test_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_fraction("f", 1.2)


class TestCheckInChoices:
    def test_accepts_member(self):
        assert check_in_choices("mode", "a", ["a", "b"]) == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError, match="mode"):
            check_in_choices("mode", "c", ["a", "b"])


class TestCheckProbabilityVector:
    def test_valid_vector(self):
        result = check_probability_vector("p", [0.25, 0.75])
        np.testing.assert_allclose(result.sum(), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [-0.1, 1.1])

    def test_rejects_bad_sum(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [0.5, 0.6])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [])

    def test_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            check_probability_vector("p", [[0.5, 0.5]])
