"""Power-budget helpers for energy-aware pruning.

Baseline-2 of the paper prunes each DNN "to fit the average harvested
power budget" (§IV-C): with one inference per window, the per-inference
energy budget is the trace's average power times the window duration.
The paper also notes Origin may *relax* this budget to the average power
requirement of the extended round-robin policy in use — with an RR
cycle of length ``n`` slots, a node computes during 1 of every ``n``
slots and may spend ``n`` windows' worth of harvest on one inference.
"""

from __future__ import annotations

from typing import Sequence

from repro.energy.traces import PowerTrace
from repro.errors import EnergyModelError
from repro.utils.validation import check_positive, check_positive_int


def average_power_budget(traces: Sequence[PowerTrace]) -> float:
    """Mean harvested power (watts) across one or more traces."""
    if not traces:
        raise EnergyModelError("need at least one trace")
    return sum(trace.average_power_w for trace in traces) / len(traces)


def inference_energy_budget(
    average_power_w: float,
    window_duration_s: float,
    *,
    rr_cycle_slots: int = 1,
    duty_nodes: int = 1,
) -> float:
    """Per-inference joule budget for pruning.

    Parameters
    ----------
    average_power_w:
        Average harvested power of the node's trace.
    window_duration_s:
        Scheduling-slot (window) duration.
    rr_cycle_slots:
        Slots per ER-r cycle; with ``rr_cycle_slots > 1`` the budget is
        relaxed because each node computes less often (paper §III-D).
    duty_nodes:
        How many of the cycle's compute slots belong to this node
        (1 for the standard 3-node deployment).
    """
    check_positive("average_power_w", average_power_w)
    check_positive("window_duration_s", window_duration_s)
    check_positive_int("rr_cycle_slots", rr_cycle_slots)
    check_positive_int("duty_nodes", duty_nodes)
    if duty_nodes > rr_cycle_slots:
        raise EnergyModelError(
            f"duty_nodes ({duty_nodes}) cannot exceed rr_cycle_slots ({rr_cycle_slots})"
        )
    return average_power_w * window_duration_s * rr_cycle_slots / duty_nodes
