"""The body-area network: nodes + host, driven slot by slot."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.body import BodyLocation
from repro.errors import SimulationError
from repro.wsn.host import HostDevice
from repro.wsn.node import InferenceOutcome, SensorNode


class BodyAreaNetwork:
    """Wires sensor nodes to the host device.

    The network knows nothing about policies; a scheduler decides which
    node (if any) is active each slot and calls :meth:`step_slot`.
    Completed inferences are forwarded to the host automatically.
    """

    def __init__(self, nodes: Sequence[SensorNode], host: HostDevice) -> None:
        if not nodes:
            raise SimulationError("a network needs at least one node")
        ids = [node.node_id for node in nodes]
        if len(set(ids)) != len(ids):
            raise SimulationError(f"duplicate node ids: {ids}")
        self.nodes: List[SensorNode] = list(nodes)
        self.host = host
        self._by_id: Dict[int, SensorNode] = {node.node_id: node for node in self.nodes}
        self._by_location: Dict[BodyLocation, SensorNode] = {
            node.location: node for node in self.nodes
        }

    # ------------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Node count."""
        return len(self.nodes)

    def node(self, node_id: int) -> SensorNode:
        """Node by id."""
        try:
            return self._by_id[node_id]
        except KeyError as error:
            raise SimulationError(f"unknown node id {node_id}") from error

    def node_at(self, location: BodyLocation) -> SensorNode:
        """Node by body location."""
        try:
            return self._by_location[location]
        except KeyError as error:
            raise SimulationError(f"no node at {location}") from error

    def node_ids(self) -> List[int]:
        """All node ids, in construction order."""
        return [node.node_id for node in self.nodes]

    # ------------------------------------------------------------------

    def step_slot(
        self,
        slot_index: int,
        active_node_ids: Sequence[int],
        windows: Dict[int, np.ndarray],
        *,
        offline_node_ids: Sequence[int] = (),
    ) -> List[InferenceOutcome]:
        """Advance every node one slot.

        ``active_node_ids`` attempt an inference on their entry in
        ``windows``; ``offline_node_ids`` (dead or browned-out) spend
        the slot dark; everyone else just harvests.  Completed outcomes
        whose result message survived the link are delivered to the
        host; all active-slot outcomes are returned for bookkeeping.
        """
        active = set(active_node_ids)
        offline = set(offline_node_ids)
        unknown = (active | offline) - set(self._by_id)
        if unknown:
            raise SimulationError(f"unknown active node ids: {sorted(unknown)}")
        if active & offline:
            raise SimulationError(
                f"nodes cannot be active while offline: {sorted(active & offline)}"
            )
        outcomes: List[InferenceOutcome] = []
        for node in self.nodes:
            if node.node_id in active:
                if node.node_id not in windows:
                    raise SimulationError(
                        f"active node {node.node_id} has no window for slot {slot_index}"
                    )
                outcome = node.active_slot(slot_index, windows[node.node_id])
                outcomes.append(outcome)
                if outcome.completed and outcome.delivered:
                    self.host.receive(outcome)
            elif node.node_id in offline:
                node.offline_slot(slot_index)
            else:
                node.idle_slot(slot_index)
        return outcomes

    def reset(self) -> None:
        """Reset every node and the host."""
        for node in self.nodes:
            node.reset()
        self.host.reset()

    def total_harvested_j(self) -> float:
        """Sum of harvested energy across nodes."""
        return sum(node.stats.harvested_j for node in self.nodes)

    def total_consumed_j(self) -> float:
        """Sum of consumed energy across nodes."""
        return sum(node.stats.consumed_j for node in self.nodes)
