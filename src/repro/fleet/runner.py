"""Population-scale execution: cohorts through the mega-batched kernel.

Three speed layers, matching the package docstring:

1. **Kernel mega-batching** — every user of a shard contributes one
   :class:`~repro.sim.kernel.BatchGroup` (its own seed, traces, gains,
   capacitor sizing and material) to a single
   :func:`~repro.sim.kernel.run_group_batch` call, so the whole shard's
   slot physics advances as one stacked structure-of-arrays kernel.
2. **Sharded execution** — ``(lo, hi)`` user ranges run under a
   :class:`~repro.resilience.SupervisedPool` with store-keyed bundle
   rehydration and a :class:`~repro.resilience.SweepJournal` recording
   each shard's exact aggregate for crash-tolerant resume.
3. **Streaming aggregation** — shards reduce to
   :class:`~repro.fleet.aggregate.FleetAggregate` tables whose merge is
   exact and order-invariant, so 1, 3 or N shards (or a resumed run)
   produce byte-identical cohort statistics in ``O(bins)`` memory.

Run material — the expensive per-timeline window/softmax build — is
memoized per ``(seed, dwell)`` pair, which :class:`CohortSpec` keeps
finite by drawing timelines from a small seed pool and dwell from a
discrete distribution.
"""

from __future__ import annotations

import copy
import logging
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.policies import PolicySpec, origin_policy
from repro.errors import ConfigurationError, FleetError
from repro.fleet.aggregate import FleetAggregate
from repro.fleet.spec import CohortSpec, UserSpec
from repro.obs import NULL_OBS, Observability
from repro.resilience.journal import SweepJournal, _digest, sweep_fingerprint
from repro.resilience.pool import SupervisedPool, SupervisedTask
from repro.sim.experiment import HARExperiment
from repro.sim.kernel import BatchGroup, run_group_batch
from repro.sim.predcache import RunMaterial, build_run_material
from repro.sim.results import ExperimentResult
from repro.sim.sweep import _init_sweep_worker, worker_experiment_payload

__all__ = [
    "FleetResult",
    "FleetRunner",
    "default_metric_bounds",
    "user_metrics",
    "simulate_users",
    "shard_aggregate",
    "fleet_fingerprint",
    "shard_cell",
]

logger = logging.getLogger(__name__)

#: Ceiling on distinct materials a worker keeps alive at once.  Only
#: reachable with a *continuous* dwell distribution (discrete cohorts
#: are bounded by ``CohortSpec.material_group_bound``); past it the
#: memo evicts least-recently-used entries and rebuilds on demand.
MATERIAL_MEMO_CAP = 64

_FLEET_HEADER_KIND = "fleet-journal"
FLEET_SCHEMA_VERSION = 1


def default_metric_bounds(
    n_slots: int, n_nodes: int
) -> Dict[str, Tuple[float, float]]:
    """Histogram ranges derived from the experiment shape.

    Every shard of a cohort derives the same bounds from the same
    ``(spec, experiment)``, which is what makes shard aggregates
    mergeable.  Energy ceilings are generous envelopes — outliers clamp
    into the edge bins while min/max/mean stay exact.
    """
    if n_slots < 1 or n_nodes < 1:
        raise ConfigurationError(
            f"need n_slots >= 1 and n_nodes >= 1, got {n_slots}, {n_nodes}"
        )
    events = float(n_slots * n_nodes)
    energy_hi = max(1e-6, 1e-3 * events)
    return {
        "event_accuracy": (0.0, 1.0),
        "overall_accuracy": (0.0, 1.0),
        "completion_rate": (0.0, 1.0),
        "completions": (0.0, events + 1.0),
        "harvested_j": (0.0, energy_hi),
        "consumed_j": (0.0, energy_hi),
        "comm_energy_j": (0.0, energy_hi),
        "accuracy_drop": (-1.0, 1.0),
    }


def user_metrics(
    result: ExperimentResult, reference: Optional[ExperimentResult] = None
) -> Dict[str, float]:
    """One user's scalar metrics for the cohort distributions.

    ``reference`` is the same ``(timeline, dwell, policy)`` run under
    the cohort's *base* config; ``accuracy_drop`` is how much this
    user's sampled deployment degrades event accuracy relative to it
    (negative = the sampled deployment did better).
    """
    stats = result.node_stats.values()
    metrics = {
        "event_accuracy": float(result.event_accuracy),
        "overall_accuracy": float(result.overall_accuracy),
        "completion_rate": float(result.completion_rate),
        "completions": float(result.total_completions),
        "harvested_j": float(sum(s.harvested_j for s in stats)),
        "consumed_j": float(sum(s.consumed_j for s in stats)),
        "comm_energy_j": float(result.comm_energy_j),
    }
    if reference is not None:
        metrics["accuracy_drop"] = float(
            reference.event_accuracy - result.event_accuracy
        )
    return metrics


# ---------------------------------------------------------------------------
# material + reference memoization
# ---------------------------------------------------------------------------


class _MaterialMemo:
    """LRU cache of :class:`RunMaterial` keyed by ``(seed, dwell)``.

    One per worker process (and one in the parent for sequential runs).
    Sharing is what amortizes the window/softmax build across every
    user on the same timeline.
    """

    def __init__(self, experiment: HARExperiment, cap: int = MATERIAL_MEMO_CAP):
        self.experiment = experiment
        self.cap = int(cap)
        self._entries: "OrderedDict[Tuple[int, float], RunMaterial]" = OrderedDict()

    def material(self, user: UserSpec) -> RunMaterial:
        key = user.material_key
        material = self._entries.get(key)
        if material is not None:
            self._entries.move_to_end(key)
            return material
        material = build_run_material(
            self.experiment.dataset,
            self.experiment.bundle,
            user.seed,
            n_windows=user.config.n_windows,
            dwell_scale=user.config.dwell_scale,
            use_pruned_models=user.config.use_pruned_models,
        )
        self._entries[key] = material
        while len(self._entries) > self.cap:
            evicted, _ = self._entries.popitem(last=False)
            logger.debug("material memo evicted %s", evicted)
        return material


class _ReferenceMemo:
    """Base-config reference runs keyed by ``(seed, dwell)``.

    The reference twin shares the user's timeline and material but runs
    the cohort's base config (dwell excepted — dwell shapes the
    timeline itself), so ``accuracy_drop`` isolates the *energy*
    heterogeneity.  Pure function of ``(experiment, spec, policies)``:
    every shard computes identical references.
    """

    def __init__(
        self,
        experiment: HARExperiment,
        spec: CohortSpec,
        policies: Sequence[PolicySpec],
    ):
        self.experiment = experiment
        self.spec = spec
        self.policies = list(policies)
        self._entries: Dict[Tuple[int, float], List[ExperimentResult]] = {}

    def results(
        self, user: UserSpec, material: RunMaterial
    ) -> List[ExperimentResult]:
        key = user.material_key
        cached = self._entries.get(key)
        if cached is not None:
            return cached
        seed, dwell = key
        reference_config = replace(self.spec.base, dwell_scale=dwell)
        results = run_group_batch(
            self.experiment,
            [
                BatchGroup(
                    policies=self.policies,
                    seed=seed,
                    config=reference_config,
                    material=material,
                )
            ],
        )[0]
        self._entries[key] = results
        return results


# ---------------------------------------------------------------------------
# shard execution
# ---------------------------------------------------------------------------


def simulate_users(
    experiment: HARExperiment,
    users: Sequence[UserSpec],
    policies: Sequence[PolicySpec],
    *,
    mega: bool = True,
    materials: Optional[_MaterialMemo] = None,
) -> List[List[ExperimentResult]]:
    """Run every policy for every user; one result row per user.

    ``mega=True`` packs the whole slice into one
    :func:`run_group_batch` call (one :class:`BatchGroup` per user);
    ``mega=False`` is the reference per-user loop through
    ``HARExperiment.run`` that the benchmark's identity assertion and
    speedup headline compare against.  Both paths consume identical
    materials, so their results are byte-identical.
    """
    users = list(users)
    if not users:
        return []
    memo = materials if materials is not None else _MaterialMemo(experiment)
    prepared = [(user, memo.material(user)) for user in users]
    if mega:
        groups = [
            BatchGroup(
                policies=policies,
                seed=user.seed,
                config=user.config,
                material=material,
            )
            for user, material in prepared
        ]
        return run_group_batch(experiment, groups)
    rows: List[List[ExperimentResult]] = []
    for user, material in prepared:
        solo = copy.copy(experiment)
        solo.config = user.config
        rows.append(
            [
                solo.run(policy, seed=user.seed, material=material)
                for policy in policies
            ]
        )
    return rows


def shard_aggregate(
    experiment: HARExperiment,
    spec: CohortSpec,
    policies: Sequence[PolicySpec],
    lo: int,
    hi: int,
    *,
    mega: bool = True,
    materials: Optional[_MaterialMemo] = None,
    references: Optional[_ReferenceMemo] = None,
) -> FleetAggregate:
    """Simulate users ``[lo, hi)`` and reduce them to one aggregate."""
    users = list(spec.users(lo, hi))
    bounds = default_metric_bounds(
        spec.base.n_windows, len(experiment.dataset.spec.locations)
    )
    aggregate = FleetAggregate(bounds=bounds)
    aggregate.shards = 1
    memo = materials if materials is not None else _MaterialMemo(experiment)
    refs = (
        references
        if references is not None
        else _ReferenceMemo(experiment, spec, policies)
    )
    rows = simulate_users(experiment, users, policies, mega=mega, materials=memo)
    for user, row in zip(users, rows):
        material = memo.material(user)
        reference_row = refs.results(user, material)
        aggregate.add_user(
            {
                policy.name: user_metrics(result, reference)
                for policy, result, reference in zip(policies, row, reference_row)
            }
        )
    return aggregate


# ---------------------------------------------------------------------------
# journal plumbing
# ---------------------------------------------------------------------------


def fleet_fingerprint(
    experiment: HARExperiment,
    spec: CohortSpec,
    policies: Sequence[PolicySpec],
    shard_size: int,
) -> str:
    """The digest keying a journal to one fleet run's inputs.

    Folds the sweep fingerprint (dataset + bundle provenance + the
    experiment's own config) together with the full cohort spec, the
    policy set and the shard layout — shard cells are only valid
    against the layout that produced them.
    """
    return _digest(
        {
            "kind": _FLEET_HEADER_KIND,
            "schema_version": FLEET_SCHEMA_VERSION,
            "sweep": sweep_fingerprint(experiment),
            "spec": spec.to_dict(),
            "policies": [asdict(policy) for policy in policies],
            "shard_size": int(shard_size),
        }
    )


def shard_cell(lo: int, hi: int) -> str:
    """The journal key of one ``[lo, hi)`` user range."""
    return f"shard:{int(lo)}-{int(hi)}"


# ---------------------------------------------------------------------------
# pool workers
# ---------------------------------------------------------------------------

_FLEET_SPEC: Optional[CohortSpec] = None
_FLEET_POLICIES: Optional[List[PolicySpec]] = None
_FLEET_MATERIALS: Optional[_MaterialMemo] = None
_FLEET_REFERENCES: Optional[_ReferenceMemo] = None
_FLEET_MEGA: bool = True


def _init_fleet_worker(
    experiment: HARExperiment,
    store_key: Optional[str],
    recipe: Any,
    spec: CohortSpec,
    policies: List[PolicySpec],
    mega: bool,
) -> None:
    """Install the cohort in this worker process.

    Delegates bundle rehydration (store key -> load, miss -> exact
    retrain) to the sweep's worker initializer, then pins the spec,
    policy list and the per-process material/reference memos.
    """
    global _FLEET_SPEC, _FLEET_POLICIES, _FLEET_MATERIALS, _FLEET_REFERENCES
    global _FLEET_MEGA
    _init_sweep_worker(experiment, False, store_key, recipe)
    # _init_sweep_worker rehydrated the bundle onto this same object.
    _FLEET_SPEC = spec
    _FLEET_POLICIES = list(policies)
    _FLEET_MATERIALS = _MaterialMemo(experiment)
    _FLEET_REFERENCES = _ReferenceMemo(experiment, spec, _FLEET_POLICIES)
    _FLEET_MEGA = bool(mega)


def _run_fleet_shard(lo: int, hi: int) -> Dict[str, Any]:
    """Worker entry point: one shard to an exact aggregate document."""
    if _FLEET_SPEC is None or _FLEET_MATERIALS is None:
        raise ConfigurationError("fleet worker used before initialization")
    aggregate = shard_aggregate(
        _FLEET_MATERIALS.experiment,
        _FLEET_SPEC,
        _FLEET_POLICIES,
        lo,
        hi,
        mega=_FLEET_MEGA,
        materials=_FLEET_MATERIALS,
        references=_FLEET_REFERENCES,
    )
    return aggregate.to_dict()


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------


@dataclass
class FleetResult:
    """Outcome of one :meth:`FleetRunner.run`."""

    aggregate: FleetAggregate
    spec: CohortSpec
    policy_names: List[str]
    elapsed_s: float
    #: Users actually simulated this call (journal hits excluded).
    users_simulated: int
    shards: int
    journal_hits: int = 0
    #: ``(cell, attempts, cause)`` per shard lost under ``salvage``.
    failed: List[Tuple[str, int, str]] = field(default_factory=list)

    @property
    def users(self) -> int:
        """Total cohort members covered (simulated + journal-resumed)."""
        return self.aggregate.users

    @property
    def lost_users(self) -> int:
        """Cohort members missing from the aggregate (failed shards)."""
        return self.spec.size - self.aggregate.users

    @property
    def users_per_second(self) -> float:
        """The headline throughput: simulated users per wall second."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.users_simulated / self.elapsed_s

    def summary(self) -> str:
        """Human-readable report (headline + percentile tables)."""
        lines = [
            f"fleet: {self.users}/{self.spec.size} user(s) x "
            f"{len(self.policy_names)} policy(ies) in {self.elapsed_s:.2f} s "
            f"({self.users_per_second:,.0f} users/s simulated)",
            f"shards: {self.shards} total, {self.journal_hits} from journal, "
            f"{len(self.failed)} failed",
        ]
        for cell, attempts, cause in self.failed:
            lines.append(f"  LOST {cell} after {attempts} attempt(s): {cause}")
        lines.extend(self.aggregate.summary_lines())
        return "\n".join(lines)


class FleetRunner:
    """Drive a :class:`CohortSpec` through the mega-batched kernel.

    Parameters
    ----------
    experiment:
        The trained :class:`HARExperiment` supplying dataset, bundle
        and the *base* deployment config the cohort perturbs.
    spec:
        Who the users are.
    policies:
        Policy set every user runs (default: ``origin_policy(12)``).
    shard_size:
        Users per kernel mega-batch / journal cell / pool task.
    worker_rehydrate:
        Forwarded to :func:`worker_experiment_payload` — ``None`` lets
        store-keyed bundles rehydrate by key instead of pickling.
    """

    def __init__(
        self,
        experiment: HARExperiment,
        spec: CohortSpec,
        *,
        policies: Optional[Sequence[PolicySpec]] = None,
        shard_size: int = 256,
        worker_rehydrate: Optional[bool] = None,
    ) -> None:
        if shard_size < 1:
            raise ConfigurationError(f"shard_size must be >= 1, got {shard_size}")
        self.experiment = experiment
        self.spec = spec
        self.policies = list(policies) if policies is not None else [origin_policy(12)]
        if not self.policies:
            raise ConfigurationError("fleet needs at least one policy")
        self.shard_size = int(shard_size)
        self.worker_rehydrate = worker_rehydrate

    def shards(self) -> List[Tuple[int, int]]:
        """The ``[lo, hi)`` user ranges, in index order."""
        return [
            (lo, min(lo + self.shard_size, self.spec.size))
            for lo in range(0, self.spec.size, self.shard_size)
        ]

    def fingerprint(self) -> str:
        """Journal fingerprint of this exact cohort/policy/layout."""
        return fleet_fingerprint(
            self.experiment, self.spec, self.policies, self.shard_size
        )

    def run(
        self,
        *,
        workers: int = 1,
        mega: bool = True,
        journal: Optional[str] = None,
        resume: bool = True,
        obs: Optional[Observability] = None,
        on_failure: str = "raise",
        task_timeout_s: Optional[float] = None,
        max_retries: int = 2,
        retry_backoff_s: float = 0.05,
    ) -> FleetResult:
        """Simulate the cohort and return its aggregate statistics.

        ``journal`` (a path) checkpoints each shard's exact aggregate:
        an interrupted run resumes from completed cells, and the merged
        output is byte-identical to an uninterrupted one.  ``workers >
        1`` shards over a :class:`SupervisedPool`; ``on_failure`` is
        ``"raise"`` (default — a shard that exhausts retries raises
        :class:`FleetError`) or ``"salvage"`` (drop it, report it in
        ``FleetResult.failed``).
        """
        if on_failure not in ("raise", "salvage"):
            raise ConfigurationError(
                f'on_failure must be "raise" or "salvage", got {on_failure!r}'
            )
        obs = obs if obs is not None else NULL_OBS
        shards = self.shards()
        started = time.perf_counter()
        if obs.enabled:
            obs.metrics.gauge("fleet.total_users").set(self.spec.size)
            obs.metrics.gauge("fleet.total_shards").set(len(shards))
            timeseries = obs.timeseries
            if timeseries is not None:
                timeseries.mark(
                    "fleet.run.started",
                    users=self.spec.size,
                    shards=len(shards),
                    policies=len(self.policies),
                )
                timeseries.sample(force=True)

        book: Optional[SweepJournal] = None
        if journal is not None:
            book = self._open_journal(journal, resume=resume)
        try:
            payloads, journal_hits, failed = self._execute(
                shards,
                book,
                workers=workers,
                mega=mega,
                obs=obs,
                on_failure=on_failure,
                task_timeout_s=task_timeout_s,
                max_retries=max_retries,
                retry_backoff_s=retry_backoff_s,
            )
        finally:
            if book is not None:
                book.close()

        bounds = default_metric_bounds(
            self.spec.base.n_windows, len(self.experiment.dataset.spec.locations)
        )
        total = FleetAggregate(bounds=bounds)
        for payload in payloads:
            total.merge(FleetAggregate.from_dict(payload))
        elapsed = time.perf_counter() - started
        users_simulated = total.users - sum(
            hi - lo for (lo, hi), hit in zip(shards, journal_hits) if hit
        )
        if obs.enabled:
            obs.metrics.inc("fleet.users", users_simulated)
            obs.metrics.inc("fleet.shards", len(shards))
            obs.metrics.inc("fleet.journal.hit", sum(journal_hits))
            obs.metrics.inc("fleet.failed_shards", len(failed))
            obs.metrics.timer("fleet.run").record(elapsed)
            timeseries = obs.timeseries
            if timeseries is not None:
                timeseries.mark(
                    "fleet.run.finished",
                    users=total.users,
                    failed=len(failed),
                    elapsed_s=round(elapsed, 3),
                )
                timeseries.sample(force=True)
        result = FleetResult(
            aggregate=total,
            spec=self.spec,
            policy_names=[policy.name for policy in self.policies],
            elapsed_s=elapsed,
            users_simulated=users_simulated,
            shards=len(shards),
            journal_hits=sum(journal_hits),
            failed=failed,
        )
        logger.info(
            "fleet run: %d user(s), %d shard(s), %.2f s (%.0f users/s)",
            result.users,
            result.shards,
            result.elapsed_s,
            result.users_per_second,
        )
        return result

    # ------------------------------------------------------------------

    @staticmethod
    def _record_shard_progress(obs: Observability, lo: int, hi: int) -> None:
        """Count one simulated shard toward live progress.

        Journal-hit shards never pass through here, so the progress
        counters (and any watcher rate derived from them) reflect users
        actually simulated this run.  The totals are identical for any
        worker layout — every simulated shard is counted exactly once,
        parent-side — so the counters stay inside the deterministic
        metrics contract.
        """
        if not obs.enabled:
            return
        obs.metrics.inc("fleet.progress.users", hi - lo)
        obs.metrics.inc("fleet.progress.shards")
        timeseries = obs.timeseries
        if timeseries is not None:
            timeseries.sample()

    def _open_journal(self, path: str, *, resume: bool) -> SweepJournal:
        try:
            return SweepJournal.open(path, self.fingerprint(), resume=resume)
        except Exception as error:
            raise FleetError(
                f"fleet journal {path!r} could not be opened: {error}"
            ) from error

    def _execute(
        self,
        shards: List[Tuple[int, int]],
        book: Optional[SweepJournal],
        *,
        workers: int,
        mega: bool,
        obs: Observability,
        on_failure: str,
        task_timeout_s: Optional[float],
        max_retries: int,
        retry_backoff_s: float,
    ) -> Tuple[List[Dict[str, Any]], List[bool], List[Tuple[str, int, str]]]:
        """Produce one aggregate payload per surviving shard, in order."""
        journal_hits = [False] * len(shards)
        payloads: Dict[int, Dict[str, Any]] = {}
        pending: List[int] = []
        for index, (lo, hi) in enumerate(shards):
            cached = book.get(shard_cell(lo, hi)) if book is not None else None
            if cached is not None:
                payloads[index] = cached
                journal_hits[index] = True
            else:
                pending.append(index)

        failed: List[Tuple[str, int, str]] = []
        if pending and workers <= 1:
            materials = _MaterialMemo(self.experiment)
            references = _ReferenceMemo(self.experiment, self.spec, self.policies)
            for index in pending:
                lo, hi = shards[index]
                aggregate = shard_aggregate(
                    self.experiment,
                    self.spec,
                    self.policies,
                    lo,
                    hi,
                    mega=mega,
                    materials=materials,
                    references=references,
                )
                payload = aggregate.to_dict()
                payloads[index] = payload
                if book is not None:
                    book.record(shard_cell(lo, hi), payload)
                self._record_shard_progress(obs, lo, hi)
        elif pending:
            failed = self._run_pool(
                shards,
                pending,
                payloads,
                book,
                mega=mega,
                workers=workers,
                obs=obs,
                task_timeout_s=task_timeout_s,
                max_retries=max_retries,
                retry_backoff_s=retry_backoff_s,
            )
            if failed and on_failure == "raise":
                detail = "; ".join(
                    f"{cell} after {attempts} attempt(s): {cause}"
                    for cell, attempts, cause in failed
                )
                raise FleetError(f"{len(failed)} fleet shard(s) failed: {detail}")

        ordered = [payloads[index] for index in sorted(payloads)]
        return ordered, journal_hits, failed

    def _run_pool(
        self,
        shards: List[Tuple[int, int]],
        pending: List[int],
        payloads: Dict[int, Dict[str, Any]],
        book: Optional[SweepJournal],
        *,
        mega: bool,
        workers: int,
        obs: Observability,
        task_timeout_s: Optional[float],
        max_retries: int,
        retry_backoff_s: float,
    ) -> List[Tuple[str, int, str]]:
        stub, store_key, recipe = worker_experiment_payload(
            self.experiment, rehydrate=self.worker_rehydrate
        )
        tasks = [
            SupervisedTask(
                fn=_run_fleet_shard,
                args=shards[index],
                label=shard_cell(*shards[index]),
            )
            for index in pending
        ]

        def checkpoint(outcome: Any) -> None:
            if outcome.ok:
                index = pending[outcome.index]
                if book is not None:
                    book.record(shard_cell(*shards[index]), outcome.result)
                self._record_shard_progress(obs, *shards[index])

        pool = SupervisedPool(
            workers,
            initializer=_init_fleet_worker,
            initargs=(stub, store_key, recipe, self.spec, self.policies, mega),
            task_timeout_s=task_timeout_s,
            max_retries=max_retries,
            backoff_s=retry_backoff_s,
            obs=obs,
        )
        outcomes = pool.run(tasks, on_outcome=checkpoint)

        failed: List[Tuple[str, int, str]] = []
        for position, outcome in enumerate(outcomes):
            index = pending[position]
            if outcome.ok:
                payloads[index] = outcome.result
            else:
                cell = shard_cell(*shards[index])
                cause = outcome.cause or "unknown"
                logger.error(
                    "fleet shard %s lost after %d attempt(s): %s",
                    cell,
                    outcome.attempts,
                    cause,
                )
                failed.append((cell, outcome.attempts, cause))
        return failed
