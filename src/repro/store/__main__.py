"""Manage the trained-bundle artifact store from the command line.

Usage::

    python -m repro.store ls
    python -m repro.store info <key>
    python -m repro.store verify [<key>]
    python -m repro.store gc [--max-bytes N] [--max-age-days D] [--dry-run]

All commands honor ``REPRO_STORE_DIR`` (or take ``--store-dir``); they
operate on whatever is on disk even when ``REPRO_STORE=off`` disables
the store for simulation runs, so CI can verify a cache it is not
currently reading.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.store.core import ArtifactStore, default_store_root


def _human_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024
    return f"{n:.1f} GiB"  # pragma: no cover - unreachable


def _human_age(seconds: float) -> str:
    if seconds < 120:
        return f"{seconds:.0f}s"
    if seconds < 7200:
        return f"{seconds / 60:.0f}m"
    if seconds < 172800:
        return f"{seconds / 3600:.1f}h"
    return f"{seconds / 86400:.1f}d"


def cmd_ls(store: ArtifactStore) -> int:
    statuses = [store.status(key) for key in store.keys()]
    if not statuses:
        print(f"(empty store at {store.root})")
        return 0
    print(f"{'key':<34} {'kind':<16} {'size':>10} {'age':>7} {'idle':>7}  state")
    for status in statuses:
        state = "ok" if status.ok else "CORRUPT"
        print(
            f"{status.key:<34} {status.kind:<16} "
            f"{_human_bytes(status.size_bytes):>10} {_human_age(status.age_s):>7} "
            f"{_human_age(status.idle_s):>7}  {state}"
        )
    total = sum(status.size_bytes for status in statuses)
    print(f"{len(statuses)} entr{'y' if len(statuses) == 1 else 'ies'}, {_human_bytes(total)} total")
    return 0


def cmd_info(store: ArtifactStore, key: str) -> int:
    entry = store.get(key)
    if entry is None:
        print(f"no healthy entry {key} in {store.root}", file=sys.stderr)
        return 1
    manifest = dict(entry.manifest)
    print(json.dumps(manifest, indent=2, sort_keys=True))
    return 0


def cmd_verify(store: ArtifactStore, key: Optional[str]) -> int:
    statuses = [store.status(key)] if key else store.verify()
    if not statuses:
        print(f"(empty store at {store.root}) — nothing to verify")
        return 0
    bad = 0
    for status in statuses:
        if status.ok:
            print(f"ok       {status.key}")
        else:
            bad += 1
            print(f"CORRUPT  {status.key}: {'; '.join(status.problems)}")
    print(f"{len(statuses) - bad}/{len(statuses)} entries healthy")
    return 1 if bad else 0


def cmd_gc(
    store: ArtifactStore,
    *,
    max_bytes: Optional[int],
    max_age_days: Optional[float],
    dry_run: bool,
) -> int:
    max_age_s = max_age_days * 86400.0 if max_age_days is not None else None
    if dry_run:
        # Report what gc would do without deleting: corrupt + expired +
        # LRU overflow, mirroring ArtifactStore.gc's selection.
        statuses = [store.status(key) for key in store.keys()]
        would = [s.key for s in statuses if not s.ok]
        would += [
            s.key
            for s in statuses
            if s.ok and max_age_s is not None and s.age_s > max_age_s
        ]
        if max_bytes is not None:
            keep = [s for s in statuses if s.ok and s.key not in would]
            keep.sort(key=lambda s: (-s.idle_s, s.key))
            total = sum(s.size_bytes for s in keep)
            while keep and total > max_bytes:
                victim = keep.pop(0)
                total -= victim.size_bytes
                would.append(victim.key)
        print(f"dry run: would remove {len(would)} entr{'y' if len(would) == 1 else 'ies'}")
        for key in would:
            print(f"  {key}")
        return 0
    report = store.gc(max_bytes=max_bytes, max_age_s=max_age_s)
    print(
        f"removed {report['n_removed']} entr"
        f"{'y' if report['n_removed'] == 1 else 'ies'} "
        f"({_human_bytes(report['reclaimed_bytes'])} reclaimed); "
        f"{report['remaining_entries']} remain "
        f"({_human_bytes(report['remaining_bytes'])})"
    )
    for reason, keys in report["removed"].items():
        for key in keys:
            print(f"  {reason:<8} {key}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help=f"store root (default: $REPRO_STORE_DIR or {default_store_root()})",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    commands.add_parser("ls", help="list entries with size/age/health")
    info = commands.add_parser("info", help="dump one entry's manifest")
    info.add_argument("key")
    verify = commands.add_parser("verify", help="recheck checksums (exit 1 on corruption)")
    verify.add_argument("key", nargs="?", default=None)
    gc = commands.add_parser("gc", help="expire by age, then trim to a size budget")
    gc.add_argument("--max-bytes", type=int, default=None, help="size budget in bytes")
    gc.add_argument("--max-age-days", type=float, default=None, help="expiry age in days")
    gc.add_argument("--dry-run", action="store_true", help="report, do not delete")
    args = parser.parse_args(argv)

    root = args.store_dir if args.store_dir is not None else default_store_root()
    store = ArtifactStore(root, enabled=True)  # CLI always sees the disk

    if args.command == "ls":
        return cmd_ls(store)
    if args.command == "info":
        return cmd_info(store, args.key)
    if args.command == "verify":
        return cmd_verify(store, args.key)
    return cmd_gc(
        store,
        max_bytes=args.max_bytes,
        max_age_days=args.max_age_days,
        dry_run=args.dry_run,
    )


if __name__ == "__main__":
    sys.exit(main())
