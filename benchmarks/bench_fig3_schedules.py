"""Fig. 3 — the extended round-robin schedule flavors.

Structural reproduction: cycle layouts of RR3/RR6/RR9/RR12 plus the
per-node harvest window each provides.
"""

from repro.core.scheduling.round_robin import ExtendedRoundRobin
from repro.reporting import render_fig3_schedules

NODES = [0, 1, 2]
RR_LENGTHS = (3, 6, 9, 12)


def test_fig3_render(save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    save_result("fig3_schedules", render_fig3_schedules(NODES, RR_LENGTHS))


def test_fig3_cycle_structure(benchmark):
    for rr_length in RR_LENGTHS:
        policy = ExtendedRoundRobin.from_rr_length(NODES, rr_length)
        assert policy.cycle_length == rr_length
        compute_slots = [
            s for s in range(rr_length) if policy.is_compute_slot(s)
        ]
        assert len(compute_slots) == 3  # one turn per node per cycle
        # No-ops are evenly distributed after each node's turn (Fig. 3).
        assert policy.noops_per_node == rr_length // 3 - 1

    benchmark.pedantic(
        lambda: [
            ExtendedRoundRobin.from_rr_length(NODES, n).describe()
            for n in RR_LENGTHS
        ],
        rounds=3,
        iterations=1,
    )


def test_fig3_harvest_window_grows_with_rr_length(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    windows = [
        ExtendedRoundRobin.from_rr_length(NODES, n).harvest_slots_per_attempt()
        for n in RR_LENGTHS
    ]
    assert windows == sorted(windows)
    assert windows[-1] == 4 * windows[0]
