"""Plain-text rendering of tables and bar charts.

The benchmark harness reproduces the paper's figures as printed series;
these helpers keep that output aligned and readable in a terminal or a
captured log file without any plotting dependency.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def format_percent(value: float, digits: int = 2) -> str:
    """Format a fraction in ``[0, 1]`` or a percentage as ``xx.yy%``.

    Values above 1.5 are assumed to already be percentages.
    """
    percent = value * 100.0 if value <= 1.5 else value
    return f"{percent:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_digits: int = 2,
) -> str:
    """Render an aligned ASCII table.

    Floats are rounded to ``float_digits``; every other cell is rendered
    with ``str``.  Column widths adapt to the longest cell.
    """

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns: {row!r}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    separator = "-+-".join("-" * width for width in widths)
    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(separator)
    parts.extend(line(row) for row in rendered)
    return "\n".join(parts)


def horizontal_bar_chart(
    values: Mapping[str, float],
    *,
    max_width: int = 40,
    max_value: Optional[float] = None,
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """Render ``label: ###### value`` bars, scaled to ``max_width`` chars.

    ``max_value`` defaults to the largest value (bars fill the width).
    """
    if not values:
        raise ValueError("values must be non-empty")
    top = max_value if max_value is not None else max(values.values())
    top = max(top, 1e-12)
    label_width = max(len(label) for label in values)
    lines = []
    if title:
        lines.append(title)
    for label, value in values.items():
        filled = int(round(max_width * min(max(value, 0.0), top) / top))
        bar = "█" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(max_width)}| {value:.2f}{unit}")
    return "\n".join(lines)


def indent_block(text: str, prefix: str = "    ") -> str:
    """Indent every line of ``text`` with ``prefix``."""
    return "\n".join(prefix + line if line else line for line in text.splitlines())
