"""Streaming time-series: recorder semantics, emission wiring, identity."""

from __future__ import annotations

import json

import pytest

from repro.core.policies import origin_policy, rr_policy
from repro.errors import ObservabilityError
from repro.fleet import CohortSpec, FleetRunner
from repro.obs import NULL_OBS, Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import SCHEMA_CHANGELOG, TRACE_SCHEMA_VERSION
from repro.obs.timeline import (
    TimeSeriesRecorder,
    TimeSeriesTail,
    attach_recorder,
    read_timeseries,
)
from repro.resilience import SupervisedPool, SupervisedTask
from repro.sim.sweep import PolicySweep


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def clocked(tmp_path):
    clock = FakeClock()
    metrics = MetricsRegistry()
    recorder = TimeSeriesRecorder(
        metrics,
        str(tmp_path / "timeseries.jsonl"),
        interval_s=1.0,
        window=4,
        clock=clock,
    )
    return clock, metrics, recorder


class TestRecorder:
    def test_schema_v2_has_changelog_entry(self):
        assert TRACE_SCHEMA_VERSION == 2
        assert 2 in SCHEMA_CHANGELOG
        assert "timeseries" in SCHEMA_CHANGELOG[2]

    def test_header_written_on_open(self, tmp_path):
        path = tmp_path / "timeseries.jsonl"
        recorder = TimeSeriesRecorder(
            MetricsRegistry(), str(path), meta={"job": "test"}
        )
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header["kind"] == "trace.header"
        assert header["schema_version"] == TRACE_SCHEMA_VERSION
        assert header["meta"] == {"job": "test"}
        recorder.close()

    def test_cadence_rate_limits_samples(self, clocked):
        clock, metrics, recorder = clocked
        assert recorder.sample() is True  # first is always due
        assert recorder.sample() is False  # inside the interval
        clock.now += 0.5
        assert recorder.sample() is False
        clock.now += 0.6
        assert recorder.sample() is True
        assert recorder.sample(force=True) is True  # force ignores cadence
        assert recorder.samples_written == 3

    def test_sample_payload_cumulative_and_delta(self, clocked):
        clock, metrics, recorder = clocked
        metrics.counter("a").inc(3)
        recorder.sample()
        metrics.counter("a").inc(2)
        metrics.counter("b").inc()
        metrics.gauge("g").set(7)
        clock.now += 2.0
        recorder.sample()
        first, second = list(recorder.recent)
        assert first["counters"] == {"a": 3.0}
        assert first["delta"] == {"a": 3.0}
        assert second["counters"] == {"a": 5.0, "b": 1.0}
        assert second["delta"] == {"a": 2.0, "b": 1.0}
        assert second["gauges"] == {"g": 7}
        assert second["t_s"] - first["t_s"] == pytest.approx(2.0)

    def test_ring_buffer_bounded_but_file_complete(self, clocked):
        clock, metrics, recorder = clocked
        for index in range(10):
            metrics.counter("n").inc()
            clock.now += 1.0
            recorder.sample()
        assert len(recorder.recent) == 4  # window=4
        recorder.close(final_sample=False)
        _, samples, _ = read_timeseries(recorder.path)
        assert len(samples) == 10  # disk keeps everything

    def test_rate_over_window(self, clocked):
        clock, metrics, recorder = clocked
        for _ in range(3):
            metrics.counter("users").inc(50)
            recorder.sample(force=True)
            clock.now += 1.0
        assert recorder.rate("users") == pytest.approx(50.0)
        assert recorder.rate("missing") == 0.0

    def test_marks_bypass_cadence(self, clocked):
        clock, metrics, recorder = clocked
        recorder.sample()
        recorder.mark("shard.done", shard="0-4")
        recorder.mark("retry")
        recorder.close(final_sample=False)
        _, _, marks = read_timeseries(recorder.path)
        assert [m["label"] for m in marks] == ["shard.done", "retry"]
        assert marks[0]["shard"] == "0-4"

    def test_close_emits_final_sample_and_is_idempotent(self, clocked):
        clock, metrics, recorder = clocked
        metrics.counter("a").inc()
        recorder.close()
        recorder.close()
        recorder.mark("late")  # swallowed, not an error
        assert recorder.sample() is False
        assert recorder.closed
        _, samples, marks = read_timeseries(recorder.path)
        assert len(samples) == 1 and not marks

    def test_constructor_validation(self, tmp_path):
        metrics = MetricsRegistry()
        path = str(tmp_path / "x.jsonl")
        with pytest.raises(ObservabilityError):
            TimeSeriesRecorder(metrics, path, interval_s=-1)
        with pytest.raises(ObservabilityError):
            TimeSeriesRecorder(metrics, path, window=0)
        with pytest.raises(ObservabilityError):
            TimeSeriesRecorder(metrics, path, flush_every=0)


class TestReader:
    def test_torn_tail_skipped(self, clocked):
        clock, metrics, recorder = clocked
        metrics.counter("a").inc()
        recorder.sample()
        recorder.flush()
        with open(recorder.path, "a") as handle:
            handle.write('{"kind": "timeseries.sample", "payl')
        _, samples, _ = read_timeseries(recorder.path)
        assert len(samples) == 1
        recorder.close(final_sample=False)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "cell"}\n')
        with pytest.raises(ObservabilityError, match="trace.header"):
            read_timeseries(str(path))

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "trace.header", "schema_version": 999, "meta": {}})
            + "\n"
        )
        with pytest.raises(ObservabilityError, match="999"):
            read_timeseries(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="empty"):
            read_timeseries(str(path))


class TestTail:
    """Incremental follow: each poll reads only newly appended bytes."""

    def test_poll_is_incremental(self, clocked):
        clock, metrics, recorder = clocked
        tail = TimeSeriesTail(recorder.path)
        metrics.counter("a").inc()
        recorder.sample()
        recorder.flush()
        assert tail.poll() == 1
        assert tail.poll() == 0  # nothing new appended
        offset = tail.offset
        clock.now += 2.0
        metrics.counter("a").inc()
        recorder.sample()
        recorder.mark("shard.done")
        recorder.flush()
        assert tail.poll() == 2
        assert tail.offset > offset
        assert len(tail.samples) == 2
        assert [m["label"] for m in tail.marks] == ["shard.done"]
        assert tail.header is not None
        recorder.close(final_sample=False)

    def test_matches_batch_reader(self, clocked):
        clock, metrics, recorder = clocked
        tail = TimeSeriesTail(recorder.path)
        for _ in range(5):
            metrics.counter("n").inc()
            clock.now += 2.0
            recorder.sample()
            recorder.flush()
            tail.poll()
        recorder.close(final_sample=False)
        tail.poll()
        header, samples, marks = read_timeseries(recorder.path)
        assert tail.header == header
        assert tail.samples == samples
        assert tail.marks == marks

    def test_torn_tail_deferred_until_complete(self, clocked):
        clock, metrics, recorder = clocked
        metrics.counter("a").inc()
        recorder.sample()
        recorder.flush()
        tail = TimeSeriesTail(recorder.path)
        tail.poll()
        line = json.dumps(
            {
                "kind": "timeseries.mark",
                "payload": {"t_s": 1.0, "label": "late"},
            }
        )
        with open(recorder.path, "a") as handle:
            handle.write(line[:10])  # a writer mid-append
        assert tail.poll() == 0
        with open(recorder.path, "a") as handle:
            handle.write(line[10:] + "\n")
        assert tail.poll() == 1
        assert tail.marks[-1]["label"] == "late"
        recorder.close(final_sample=False)

    def test_truncation_resets(self, clocked):
        clock, metrics, recorder = clocked
        metrics.counter("a").inc()
        recorder.sample()
        recorder.close(final_sample=False)
        tail = TimeSeriesTail(recorder.path)
        assert tail.poll() == 1
        header_line = None
        with open(recorder.path) as handle:
            header_line = handle.readline()
        with open(recorder.path, "w") as handle:
            handle.write(header_line)  # restarted writer: shorter file
        tail.poll()
        assert tail.samples == [] and tail.offset == len(header_line)

    def test_missing_file_is_quiet(self, tmp_path):
        tail = TimeSeriesTail(str(tmp_path / "not-yet.jsonl"))
        assert tail.poll() == 0
        assert tail.header is None

    def test_bad_header_raises_on_poll(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "cell"}\n')
        with pytest.raises(ObservabilityError, match="trace.header"):
            TimeSeriesTail(str(path)).poll()


class TestAttach:
    def test_attach_installs_on_obs(self, tmp_path):
        obs = Observability()
        recorder = attach_recorder(obs, str(tmp_path / "ts.jsonl"))
        assert obs.timeseries is recorder
        assert recorder.metrics is obs.metrics
        recorder.close()

    def test_attach_rejects_null_obs(self, tmp_path):
        with pytest.raises(ObservabilityError, match="disabled"):
            attach_recorder(NULL_OBS, str(tmp_path / "ts.jsonl"))

    def test_null_obs_has_no_timeseries(self):
        assert NULL_OBS.timeseries is None
        assert Observability().timeseries is None


def _double(value):
    return value * 2


class TestEmissionWiring:
    def test_pool_heartbeat_gauges(self, tmp_path):
        obs = Observability()
        recorder = attach_recorder(obs, str(tmp_path / "ts.jsonl"), interval_s=0.0)
        pool = SupervisedPool(2, heartbeat_s=0.0, obs=obs)
        outcomes = pool.run([SupervisedTask(fn=_double, args=(v,)) for v in range(4)])
        recorder.close()
        assert [o.result for o in outcomes] == [0, 2, 4, 6]
        metrics = obs.metrics.to_dict()
        assert metrics["gauges"]["resilience.heartbeat"] >= 1
        # The final beat reports a drained pool.
        assert metrics["gauges"]["resilience.inflight"] == 0
        assert metrics["gauges"]["resilience.queue_depth"] == 0
        # Heartbeats are gauges only: the deterministic dict stays clean.
        assert not any(
            name.startswith("resilience.")
            for name in obs.metrics.deterministic_dict()["counters"]
        )
        _, samples, _ = read_timeseries(str(tmp_path / "ts.jsonl"))
        assert samples  # the supervision loop sampled the stream

    def test_pool_incident_marks(self, tmp_path):
        obs = Observability()
        recorder = attach_recorder(obs, str(tmp_path / "ts.jsonl"), interval_s=0.0)
        pool = SupervisedPool(1, max_retries=1, backoff_s=0.0, obs=obs)
        outcomes = pool.run(
            [
                SupervisedTask(
                    fn=_double,
                    args_for_attempt=lambda attempt: (
                        (1,) if attempt else ("boom", None)  # TypeError first
                    ),
                )
            ]
        )
        recorder.close()
        assert outcomes[0].ok
        _, _, marks = read_timeseries(str(tmp_path / "ts.jsonl"))
        labels = [m["label"] for m in marks]
        assert "resilience.task_errors" in labels
        assert "resilience.retries" in labels

    def test_sweep_progress_counter_sequential(self, tiny_experiment, tmp_path):
        obs = Observability()
        attach_recorder(obs, str(tmp_path / "ts.jsonl"), interval_s=0.0)
        policies = [origin_policy(3), rr_policy(3)]
        sweep = PolicySweep(tiny_experiment, n_seeds=2, include_baselines=False)
        sweep.run(policies=policies, obs=obs)
        obs.timeseries.close()
        assert obs.metrics.counter("sweep.progress.cells").value == 4
        assert obs.metrics.to_dict()["gauges"]["sweep.total_cells"] == 4
        _, samples, _ = read_timeseries(str(tmp_path / "ts.jsonl"))
        final = samples[-1]["counters"]
        assert final["sweep.progress.cells"] == 4.0

    def test_sweep_progress_counter_parallel_matches(self, tiny_experiment):
        policies = [origin_policy(3), rr_policy(3)]
        sequential = Observability()
        PolicySweep(tiny_experiment, n_seeds=2, include_baselines=False).run(
            policies=policies, obs=sequential
        )
        parallel = Observability()
        PolicySweep(tiny_experiment, n_seeds=2, include_baselines=False).run(
            policies=policies, obs=parallel, workers=2
        )
        assert (
            parallel.metrics.counter("sweep.progress.cells").value
            == sequential.metrics.counter("sweep.progress.cells").value
            == 4
        )


class TestFleetIdentity:
    """Acceptance: a recorded fleet run is byte-identical to a bare one."""

    @pytest.fixture(scope="class")
    def runner(self, tiny_experiment):
        spec = CohortSpec(
            size=6, seed=9, base=tiny_experiment.config, n_timelines=2
        )
        return FleetRunner(
            tiny_experiment, spec, policies=[origin_policy(6)], shard_size=3
        )

    def test_recorded_run_byte_identical(self, runner, tmp_path):
        bare = runner.run()
        obs = Observability()
        recorder = attach_recorder(
            obs, str(tmp_path / "ts.jsonl"), interval_s=0.0
        )
        recorded = runner.run(obs=obs)
        recorder.close()
        assert recorded.aggregate.stats_json() == bare.aggregate.stats_json()

    def test_fleet_progress_counters_and_marks(self, runner, tmp_path):
        obs = Observability()
        recorder = attach_recorder(
            obs, str(tmp_path / "ts.jsonl"), interval_s=0.0
        )
        result = runner.run(obs=obs)
        recorder.close()
        assert result.users == 6
        counters = obs.metrics.to_dict()["counters"]
        gauges = obs.metrics.to_dict()["gauges"]
        assert counters["fleet.progress.users"] == 6.0
        assert counters["fleet.progress.shards"] == 2.0
        assert gauges["fleet.total_users"] == 6
        assert gauges["fleet.total_shards"] == 2
        _, samples, marks = read_timeseries(str(tmp_path / "ts.jsonl"))
        labels = [m["label"] for m in marks]
        assert labels[0] == "fleet.run.started"
        assert labels[-1] == "fleet.run.finished"
        assert samples[-1]["counters"]["fleet.progress.users"] == 6.0

    def test_journal_hits_excluded_from_progress(self, runner, tmp_path):
        journal = str(tmp_path / "fleet.journal")
        runner.run(journal=journal)  # populate every shard cell
        obs = Observability()
        resumed = runner.run(journal=journal, obs=obs)
        assert resumed.journal_hits == 2
        counters = obs.metrics.to_dict()["counters"]
        assert counters.get("fleet.progress.users", 0.0) == 0.0
        assert counters["fleet.journal.hit"] == 2.0
