"""Extension — the Discussion's resilience and hybrid-power claims.

Paper §IV (Discussion): Origin "uses multiple sensors effectively and
hence poses minimum risk if one of the sensors fails", and "can also be
used with battery-powered or hybrid ... systems".  These benches
quantify both on the reproduction.
"""

from dataclasses import replace

import numpy as np
import pytest

from benchmarks.conftest import SEEDS, standard_config
from repro.core.policies import origin_policy
from repro.faults import FaultPlan
from repro.utils.text import format_table

FAIL_AT = 100  # the wrist node dies a fifth into the run


@pytest.fixture(scope="module")
def resilience(mhealth_exp):
    wrist_id = 1  # deployment order: chest 0, right wrist 1, left ankle 2
    healthy, failed = [], []
    for seed in SEEDS:
        subject = mhealth_exp.dataset.eval_subjects[seed % 2]
        healthy.append(
            mhealth_exp.run(origin_policy(12), seed=seed, subject=subject).event_accuracy
        )
        failed.append(
            mhealth_exp.run(
                origin_policy(12),
                seed=seed,
                subject=subject,
                faults=FaultPlan.from_failures({wrist_id: FAIL_AT}),
            ).event_accuracy
        )
    return float(np.mean(healthy)), float(np.mean(failed))


@pytest.fixture(scope="module")
def hybrid(mhealth_exp):
    saved = mhealth_exp.config
    rows = {}
    try:
        for name, scale, battery in (
            ("starved EH (0.4x)", 0.4, 0.0),
            ("starved EH + 20 uW battery", 0.4, 20e-6),
            ("nominal EH", 1.0, 0.0),
        ):
            mhealth_exp.config = replace(
                standard_config(), trace_scale=scale, battery_supplement_w=battery
            )
            runs = [
                mhealth_exp.run(origin_policy(12), seed=seed) for seed in SEEDS[:3]
            ]
            rows[name] = (
                float(np.mean([r.completion_rate for r in runs])),
                float(np.mean([r.event_accuracy for r in runs])),
            )
    finally:
        mhealth_exp.config = saved
    return rows


def test_resilience_render(resilience, hybrid, save_result, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    healthy, failed = resilience
    rows = [
        ["all three sensors healthy", healthy * 100],
        [f"wrist dies at slot {FAIL_AT}", failed * 100],
        ["degradation (pts)", (healthy - failed) * 100],
    ]
    text = format_table(
        ["Scenario", "Event accuracy (%)"],
        rows,
        title="=== Extension: sensor-failure resilience (RR12 Origin) ===",
    )
    text += "\n\n" + format_table(
        ["Power supply", "Completion (%)", "Event accuracy (%)"],
        [
            [name, completion * 100, accuracy * 100]
            for name, (completion, accuracy) in hybrid.items()
        ],
        title="=== Extension: hybrid battery+EH operation (RR12 Origin) ===",
    )
    save_result("ext_resilience_hybrid", text)


def test_failure_degrades_gracefully(resilience, benchmark):
    """Losing one of three sensors costs points, not collapse."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    healthy, failed = resilience
    assert failed > 0.5 * healthy, (healthy, failed)
    assert failed > 0.45, "the surviving pair must stay usable"


def test_battery_trickle_rescues_starved_deployment(hybrid, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    starved = hybrid["starved EH (0.4x)"]
    rescued = hybrid["starved EH + 20 uW battery"]
    assert rescued[0] > starved[0], "battery trickle must lift completion"
    assert rescued[1] >= starved[1] - 0.02


def test_resilience_timing(benchmark, mhealth_exp):
    benchmark.pedantic(
        lambda: mhealth_exp.run(
            origin_policy(12),
            seed=2,
            n_windows=120,
            faults=FaultPlan.from_failures({1: 40}),
        ),
        rounds=1,
        iterations=1,
    )
