"""Tests for the confidence matrix and voting functions."""

import numpy as np
import pytest

from repro.core.ensemble import ConfidenceMatrix, MajorityVote, WeightedMajorityVote
from repro.errors import ConfigurationError
from repro.wsn.host import ReceivedVote


def vote(node_id, label, confidence=0.1, started_slot=0):
    return ReceivedVote(
        node_id=node_id,
        label=label,
        confidence=confidence,
        probabilities=None,
        received_slot=started_slot,
        started_slot=started_slot,
    )


@pytest.fixture
def matrix():
    return ConfidenceMatrix(
        {0: [0.10, 0.02, 0.05], 1: [0.03, 0.12, 0.06], 2: [0.08, 0.08, 0.01]},
        adaptation_alpha=0.5,
    )


class TestConfidenceMatrix:
    def test_raw_weight_lookup(self, matrix):
        assert matrix.raw_weight(0, 0) == pytest.approx(0.10)
        assert matrix.weight(0, 0) == pytest.approx(0.10)  # unnormalized default

    def test_normalized_weight(self):
        normalized = ConfidenceMatrix({0: [0.2, 0.1, 0.0]}, normalize=True)
        assert normalized.weight(0, 0) == pytest.approx(2.0)
        assert normalized.weight(0, 2) == pytest.approx(0.0)

    def test_update_moves_toward_observation(self, matrix):
        updated = matrix.update(0, 1, confidence=0.10)
        assert updated == pytest.approx(0.02 + 0.5 * (0.10 - 0.02))
        assert matrix.updates == 1

    def test_update_noop_with_zero_alpha(self, matrix):
        frozen = matrix.copy(adaptation_alpha=0.0)
        before = frozen.raw_weight(0, 0)
        frozen.update(0, 0, confidence=0.9)
        assert frozen.raw_weight(0, 0) == before
        assert frozen.updates == 0

    def test_update_operates_on_raw_scale(self):
        """Regression: update() must read the raw entry, not the
        normalized voting weight, or one update inflates the row."""
        normalized = ConfidenceMatrix(
            {0: [0.1, 0.1, 0.1]}, adaptation_alpha=0.5, normalize=True
        )
        normalized.update(0, 0, confidence=0.1)
        assert normalized.raw_weight(0, 0) == pytest.approx(0.1)

    def test_copy_is_independent(self, matrix):
        clone = matrix.copy()
        clone.update(0, 0, confidence=0.9)
        assert matrix.raw_weight(0, 0) == pytest.approx(0.10)
        assert clone.normalize == matrix.normalize

    def test_as_array(self, matrix):
        array = matrix.as_array()
        assert array.shape == (3, 3)
        np.testing.assert_allclose(array[0], [0.10, 0.02, 0.05])

    def test_seed_from_validation(self, tiny_bundle, tiny_dataset):
        matrix = tiny_bundle.confidence_matrix
        assert matrix.n_classes == tiny_dataset.n_classes
        assert len(matrix.node_ids) == 3
        assert (matrix.as_array() >= 0).all()

    def test_unknown_node(self, matrix):
        with pytest.raises(ConfigurationError):
            matrix.weight(9, 0)

    def test_label_out_of_range(self, matrix):
        with pytest.raises(ConfigurationError):
            matrix.weight(0, 5)

    def test_negative_confidence_rejected(self, matrix):
        with pytest.raises(ConfigurationError):
            matrix.update(0, 0, confidence=-0.1)

    def test_negative_confidence_validated_before_node_lookup(self, matrix):
        """Regression: a bad confidence must report itself even when the
        node id is also unknown, not hide behind the node error."""
        with pytest.raises(ConfigurationError, match="confidence must be >= 0"):
            matrix.update(99, 0, confidence=-0.1)

    def test_inconsistent_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfidenceMatrix({0: [0.1, 0.2], 1: [0.1, 0.2, 0.3]})

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfidenceMatrix({})


class TestMajorityVote:
    def test_simple_majority(self):
        voter = MajorityVote()
        assert voter([vote(0, 1), vote(1, 1), vote(2, 0)], 5) == 1

    def test_tie_resolves_to_freshest(self):
        voter = MajorityVote()
        votes = [vote(0, 1, started_slot=2), vote(1, 0, started_slot=7)]
        assert voter(votes, 8) == 0

    def test_empty_votes(self):
        assert MajorityVote()([], 0) is None

    def test_unanimous(self):
        voter = MajorityVote()
        assert voter([vote(n, 2) for n in range(3)], 0) == 2


class TestWeightedMajorityVote:
    def test_matrix_weight_swings_vote(self, matrix):
        # Node 1 confident in class 1 outweighs two weak votes for 2.
        voter = WeightedMajorityVote(matrix, blend=0.0)
        votes = [vote(0, 2), vote(2, 2), vote(1, 1)]
        # weights: class2 = 0.05 + 0.01 = 0.06 < class1 = 0.12
        assert voter(votes, 0) == 1

    def test_transmitted_confidence_used_with_blend_one(self, matrix):
        voter = WeightedMajorityVote(matrix, blend=1.0)
        votes = [vote(0, 0, confidence=0.01), vote(1, 2, confidence=0.5)]
        assert voter(votes, 0) == 2

    def test_blend_mixes(self, matrix):
        voter = WeightedMajorityVote(matrix, blend=0.5)
        weight = voter._weight(vote(0, 0, confidence=0.2))
        assert weight == pytest.approx(0.5 * 0.2 + 0.5 * 0.10)

    def test_empty_votes(self, matrix):
        assert WeightedMajorityVote(matrix)([], 0) is None

    def test_exact_tie_resolves_to_freshest(self):
        matrix = ConfidenceMatrix({0: [0.1, 0.1], 1: [0.1, 0.1]})
        voter = WeightedMajorityVote(matrix, blend=0.0)
        votes = [vote(0, 0, started_slot=1), vote(1, 1, started_slot=4)]
        assert voter(votes, 5) == 1

    def test_invalid_blend(self, matrix):
        with pytest.raises(ConfigurationError):
            WeightedMajorityVote(matrix, blend=1.5)

    def test_requires_matrix(self):
        with pytest.raises(ConfigurationError):
            WeightedMajorityVote({"not": "a matrix"})
