"""Integration tests: observability threaded through the simulation.

The two load-bearing guarantees:

* tracing is *passive* — the same seed with observability on and off
  produces byte-identical :class:`ExperimentResult`s;
* metrics are *merge-deterministic* — a parallel sweep aggregates its
  workers' registries to exactly the sequential sweep's values.
"""

from __future__ import annotations

import pytest

from repro.core.policies import origin_policy, rr_policy
from repro.faults.models import Brownout
from repro.faults.plan import FaultPlan
from repro.obs.observer import Observability
from repro.obs.summarize import render_report, split_runs
from repro.obs.trace import NULL_TRACER, read_trace
from repro.sim.sweep import PolicySweep


def _results_equal(a, b) -> bool:
    return (
        a.records == b.records
        and a.node_stats == b.node_stats
        and a.comm_energy_j == b.comm_energy_j
    )


class TestBitIdentity:
    def test_traced_run_is_byte_identical(self, tiny_experiment):
        policy = origin_policy(3)
        plain = tiny_experiment.run(policy, seed=21)
        obs = Observability()
        traced = tiny_experiment.run(policy, seed=21, obs=obs)
        assert _results_equal(plain, traced)
        assert len(obs.tracer.events) > 0

    def test_metrics_only_run_is_byte_identical(self, tiny_experiment):
        policy = rr_policy(3)
        plain = tiny_experiment.run(policy, seed=22)
        obs = Observability(tracer=NULL_TRACER)
        observed = tiny_experiment.run(policy, seed=22, obs=obs)
        assert _results_equal(plain, observed)
        assert len(obs.tracer.events) == 0
        assert obs.metrics.counter("sim.runs").value == 1

    def test_traced_faulted_run_is_byte_identical(self, tiny_experiment):
        policy = origin_policy(3)
        faults = FaultPlan(faults=(Brownout(node_id=0, start_slot=10, duration_slots=5),))
        plain = tiny_experiment.run(policy, seed=23, faults=faults)
        obs = Observability()
        traced = tiny_experiment.run(policy, seed=23, faults=faults, obs=obs)
        assert _results_equal(plain, traced)
        fired = obs.tracer.of_kind("fault.fired")
        assert any(e.payload["fault"] == "power_down" for e in fired)


class TestTraceContent:
    @pytest.fixture(scope="class")
    def traced(self, tiny_experiment):
        obs = Observability()
        result = tiny_experiment.run(origin_policy(3), seed=31, obs=obs)
        return obs, result

    def test_run_lifecycle_events(self, traced):
        obs, result = traced
        (started,) = obs.tracer.of_kind("run.started")
        (finished,) = obs.tracer.of_kind("run.finished")
        assert started.payload["n_windows"] == result.n_slots
        assert finished.payload["completions"] == result.total_completions

    def test_one_slot_scheduled_event_per_slot(self, traced):
        obs, result = traced
        scheduled = obs.tracer.of_kind("slot.scheduled")
        assert [e.slot for e in scheduled] == list(range(result.n_slots))

    def test_completions_match_trace(self, traced):
        obs, result = traced
        completed = obs.tracer.of_kind("inference.completed")
        assert len(completed) == result.total_completions
        # Every completion reports the slot whose window it classified.
        for event in completed:
            assert event.payload["started_slot"] <= event.slot

    def test_nvp_task_accounting(self, traced):
        obs, result = traced
        bursts = obs.tracer.of_kind("nvp.burst")
        assert bursts, "active slots must emit burst summaries"
        completed_bursts = [e for e in bursts if e.payload["completed"]]
        assert len(completed_bursts) == result.total_completions

    def test_export_and_summarize_round_trip(self, traced, tmp_path):
        obs, _ = traced
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        obs.export(str(trace_path), str(metrics_path), meta={"suite": "test"})
        header, events = read_trace(str(trace_path))
        assert len(events) == len(obs.tracer.events)
        assert len(split_runs(events)) == 1
        report = render_report(header, events, metrics=obs.metrics)
        assert "run #0" in report
        assert "node 0" in report
        assert "top timers" in report


class TestParallelMergeDeterminism:
    @pytest.fixture(scope="class")
    def grid(self):
        return [rr_policy(3), origin_policy(3)]

    def _sweep_metrics(self, experiment, grid, workers):
        sweep = PolicySweep(experiment, n_seeds=2, include_baselines=False)
        obs = Observability(tracer=NULL_TRACER)
        sweep.run(grid, seed=17, workers=workers, obs=obs)
        return obs.metrics

    def test_workers4_equals_workers1(self, tiny_experiment, grid):
        sequential = self._sweep_metrics(tiny_experiment, grid, workers=1)
        parallel = self._sweep_metrics(tiny_experiment, grid, workers=4)
        assert (
            parallel.deterministic_dict() == sequential.deterministic_dict()
        ), "parallel merge must reproduce sequential counters/histograms exactly"

    def test_parallel_trace_covers_all_runs(self, tiny_experiment, grid):
        obs = Observability()
        sweep = PolicySweep(tiny_experiment, n_seeds=2, include_baselines=False)
        sweep.run(grid, seed=17, workers=4, obs=obs)
        started = obs.tracer.of_kind("run.started")
        assert len(started) == len(grid) * 2  # every (policy, seed) traced
        seqs = [event.seq for event in obs.tracer.events]
        assert seqs == sorted(seqs)  # merged into one total order
