#!/usr/bin/env python
"""Quickstart: train the deployment, run Origin, compare to a baseline.

Builds the MHEALTH-like dataset, trains the three per-location CNNs,
prunes them to the harvested-power budget, then simulates ~21 minutes of
wear time (500 windows) under Origin's RR12 policy — entirely on
harvested WiFi energy — and prints how it compares with the
fully-powered pruned baseline.

Run:  python examples/quickstart.py
Takes about a minute (six small CNNs are trained from scratch).
"""

from repro.core import Baseline2, OriginPolicy
from repro.sim import HARExperiment, SimulationConfig, evaluate_baseline

def main() -> None:
    print("Building dataset + training per-location CNNs (one-time)...")
    experiment = HARExperiment.standard_mhealth(
        seed=7, config=SimulationConfig(n_windows=500, dwell_scale=5.0)
    )

    print("\nTrained sensor nodes:")
    for location, entry in experiment.bundle.by_location.items():
        print(
            f"  {location.label:<12} unpruned {entry.val_accuracy:5.1%} "
            f"({entry.inference_energy_j * 1e6:6.1f} uJ/inf)  ->  "
            f"pruned {entry.pruned_val_accuracy:5.1%} "
            f"({entry.pruned_inference_energy_j * 1e6:6.1f} uJ/inf)"
        )
    print(f"  energy budget: {experiment.bundle.budget_j * 1e6:.1f} uJ/inference")

    print("\nSimulating Origin (RR12) on harvested energy...")
    result = experiment.run(OriginPolicy.with_rr(12), seed=11)
    print(result.summary())
    print(
        f"  classification events: {result.n_events} "
        f"(event accuracy {result.event_accuracy:.1%})"
    )
    breakdown = result.completion_breakdown()
    print(f"  inference completion: {breakdown.any_fraction:.1%} of attempts")

    # One stream is noisy; compare over a few independent days of wear.
    seeds = (11, 12, 13, 14)
    origin_acc = sum(
        experiment.run(OriginPolicy.with_rr(12), seed=s).event_accuracy
        for s in seeds
    ) / len(seeds)
    baseline_acc = sum(
        evaluate_baseline(
            experiment.dataset, experiment.bundle, Baseline2,
            n_windows=500, seed=s, dwell_scale=5.0,
        ).overall_accuracy
        for s in seeds
    ) / len(seeds)
    print(
        f"\nAveraged over {len(seeds)} streams:\n"
        f"  Origin RR12 (harvested energy): {origin_acc:.1%}\n"
        f"  Baseline-2 (steady power):      {baseline_acc:.1%}\n"
        f"  delta: {(origin_acc - baseline_acc) * 100:+.1f} points"
    )


if __name__ == "__main__":
    main()
