"""Streaming statistics used across the package.

The confidence matrix (paper §III-C) is seeded with the *mean variance of
the softmax output vector* over validation samples and adapted online with
a moving average; these helpers implement exactly those primitives.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def confidence_from_softmax(probabilities: np.ndarray) -> float:
    """The paper's confidence metric: variance of the softmax vector.

    A one-hot output (fully confident) maximizes the variance; the uniform
    vector (fully confused) gives zero.  Accepts a single probability
    vector of length ``n_classes``.
    """
    vector = np.asarray(probabilities, dtype=float)
    if vector.ndim != 1 or vector.size < 2:
        raise ConfigurationError(
            f"softmax vector must be 1-D with >= 2 classes, got shape {vector.shape}"
        )
    return float(np.var(vector))


def max_confidence(n_classes: int) -> float:
    """Variance of a one-hot vector with ``n_classes`` entries.

    Useful for normalizing :func:`confidence_from_softmax` to ``[0, 1]``.
    """
    if n_classes < 2:
        raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
    one_hot = np.zeros(n_classes)
    one_hot[0] = 1.0
    return float(np.var(one_hot))


class RunningMean:
    """Numerically stable streaming mean (Welford update, mean only)."""

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0

    @property
    def count(self) -> int:
        """Number of observed values."""
        return self._count

    @property
    def value(self) -> float:
        """Current mean; ``0.0`` before any update."""
        return self._mean

    def update(self, sample: float) -> float:
        """Fold ``sample`` into the mean and return the new mean."""
        self._count += 1
        self._mean += (float(sample) - self._mean) / self._count
        return self._mean

    def merge(self, other: "RunningMean") -> "RunningMean":
        """Combine two running means as if all samples were seen by one."""
        merged = RunningMean()
        merged._count = self._count + other._count
        if merged._count:
            merged._mean = (
                self._mean * self._count + other._mean * other._count
            ) / merged._count
        return merged


class ExponentialMovingAverage:
    """EMA with configurable smoothing, used for confidence adaptation.

    ``alpha`` is the weight of the *new* observation:
    ``value <- (1 - alpha) * value + alpha * sample``.
    """

    def __init__(self, alpha: float, initial: float = 0.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._value = float(initial)
        self._updates = 0

    @property
    def value(self) -> float:
        """Current smoothed value."""
        return self._value

    @property
    def updates(self) -> int:
        """How many samples have been folded in."""
        return self._updates

    def update(self, sample: float) -> float:
        """Fold ``sample`` in and return the new smoothed value."""
        self._value += self.alpha * (float(sample) - self._value)
        self._updates += 1
        return self._value


def signal_power(samples: np.ndarray) -> float:
    """Mean squared amplitude of a signal (any shape)."""
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ConfigurationError("signal must be non-empty")
    return float(np.mean(array**2))


def snr_db(signal: np.ndarray, noise: np.ndarray) -> float:
    """Signal-to-noise ratio in dB between a signal and a noise array."""
    noise_power = signal_power(noise)
    if noise_power == 0:
        return float("inf")
    return 10.0 * float(np.log10(signal_power(signal) / noise_power))
