"""Tests for Capacitor, Harvester, NVP and budget helpers."""

import numpy as np
import pytest

from repro.energy.budget import average_power_budget, inference_energy_budget
from repro.energy.harvester import Harvester
from repro.energy.nvp import NonVolatileProcessor, TaskState
from repro.energy.storage import Capacitor
from repro.energy.traces import PowerTrace
from repro.errors import EnergyModelError, SimulationError


class TestCapacitor:
    def test_deposit_and_draw(self):
        cap = Capacitor(capacity_j=10.0)
        assert cap.deposit(4.0) == 4.0
        assert cap.draw(1.5) == 1.5
        assert cap.stored_j == pytest.approx(2.5)

    def test_ceiling_sheds(self):
        cap = Capacitor(capacity_j=5.0)
        accepted = cap.deposit(8.0)
        assert accepted == 5.0
        assert cap.shed_j == 3.0
        assert cap.headroom_j == 0.0

    def test_draw_limited_to_stored(self):
        cap = Capacitor(capacity_j=5.0, initial_j=1.0)
        assert cap.draw(3.0) == 1.0
        assert cap.stored_j == 0.0

    def test_can_supply(self):
        cap = Capacitor(capacity_j=5.0, initial_j=2.0)
        assert cap.can_supply(2.0)
        assert not cap.can_supply(2.1)

    def test_leakage(self):
        cap = Capacitor(capacity_j=5.0, initial_j=1.0, leakage_w=0.1)
        lost = cap.leak(5.0)
        assert lost == pytest.approx(0.5)
        assert cap.leaked_j == pytest.approx(0.5)

    def test_leak_cannot_go_negative(self):
        cap = Capacitor(capacity_j=5.0, initial_j=0.1, leakage_w=1.0)
        cap.leak(10.0)
        assert cap.stored_j == 0.0

    def test_initial_clamped(self):
        cap = Capacitor(capacity_j=2.0, initial_j=5.0)
        assert cap.stored_j == 2.0

    def test_fill_fraction(self):
        cap = Capacitor(capacity_j=4.0, initial_j=1.0)
        assert cap.fill_fraction() == 0.25

    def test_reset(self):
        cap = Capacitor(capacity_j=5.0)
        cap.deposit(10.0)
        cap.reset(1.0)
        assert cap.stored_j == 1.0
        assert cap.shed_j == 0.0

    def test_negative_operations_rejected(self):
        cap = Capacitor(capacity_j=5.0)
        with pytest.raises(EnergyModelError):
            cap.deposit(-1.0)
        with pytest.raises(EnergyModelError):
            cap.draw(-1.0)
        with pytest.raises(EnergyModelError):
            cap.leak(-1.0)


class TestHarvester:
    @pytest.fixture
    def harvester(self):
        trace = PowerTrace(dt_s=1.0, watts=np.array([2.0, 4.0]))
        return Harvester(trace, efficiency=0.5, gain=2.0)

    def test_energy_scaled_by_efficiency_and_gain(self, harvester):
        assert harvester.energy_between(0.0, 2.0) == pytest.approx(6.0)

    def test_slot_energies(self, harvester):
        np.testing.assert_allclose(harvester.slot_energies(1.0), [2.0, 4.0])

    def test_average_power(self, harvester):
        assert harvester.average_power_w == pytest.approx(3.0)

    def test_zero_efficiency_rejected(self):
        trace = PowerTrace(1.0, np.array([1.0]))
        with pytest.raises(EnergyModelError):
            Harvester(trace, efficiency=0.0)


class TestNonVolatileProcessor:
    def test_completes_in_one_burst(self):
        nvp = NonVolatileProcessor(checkpoint_overhead=0.0)
        nvp.start_task(1.0)
        outcome = nvp.execute_burst(2.0)
        assert outcome.completed
        assert outcome.consumed_j == pytest.approx(1.0)
        assert nvp.state is TaskState.COMPLETED
        assert nvp.completed_tasks == 1

    def test_progress_survives_across_bursts(self):
        nvp = NonVolatileProcessor(checkpoint_overhead=0.0)
        nvp.start_task(1.0)
        assert not nvp.execute_burst(0.4).completed
        assert nvp.remaining_work_j == pytest.approx(0.6)
        assert nvp.execute_burst(0.7).completed

    def test_checkpoint_overhead_inflates_cost(self):
        nvp = NonVolatileProcessor(checkpoint_overhead=0.2)
        nvp.start_task(0.8)
        outcome = nvp.execute_burst(10.0)
        assert outcome.consumed_j == pytest.approx(1.0)  # 0.8 / 0.8

    def test_volatile_loses_progress(self):
        nvp = NonVolatileProcessor(checkpoint_overhead=0.0, volatile=True)
        nvp.start_task(1.0)
        nvp.execute_burst(0.9)
        assert nvp.progress_fraction == 0.0
        assert nvp.remaining_work_j == pytest.approx(1.0)

    def test_acknowledge_returns_to_idle(self):
        nvp = NonVolatileProcessor()
        nvp.start_task(0.1)
        nvp.execute_burst(1.0)
        nvp.acknowledge_completion()
        assert nvp.state is TaskState.IDLE

    def test_double_start_rejected(self):
        nvp = NonVolatileProcessor()
        nvp.start_task(1.0)
        with pytest.raises(SimulationError):
            nvp.start_task(1.0)

    def test_burst_without_task_rejected(self):
        with pytest.raises(SimulationError):
            NonVolatileProcessor().execute_burst(1.0)

    def test_abort_counts(self):
        nvp = NonVolatileProcessor()
        nvp.start_task(1.0)
        nvp.abort()
        assert nvp.aborted_tasks == 1
        assert nvp.state is TaskState.IDLE

    def test_acknowledge_without_completion_rejected(self):
        with pytest.raises(SimulationError):
            NonVolatileProcessor().acknowledge_completion()

    def test_progress_fraction(self):
        nvp = NonVolatileProcessor(checkpoint_overhead=0.0)
        nvp.start_task(2.0)
        nvp.execute_burst(1.0)
        assert nvp.progress_fraction == pytest.approx(0.5)


class TestBudget:
    def test_average_power_budget(self):
        traces = [
            PowerTrace(1.0, np.array([2.0, 2.0])),
            PowerTrace(1.0, np.array([4.0, 4.0])),
        ]
        assert average_power_budget(traces) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(EnergyModelError):
            average_power_budget([])

    def test_inference_budget_basic(self):
        assert inference_energy_budget(30e-6, 2.56) == pytest.approx(76.8e-6)

    def test_rr_relaxation(self):
        # Paper SIII-D: the ER-r policy relaxes the constraint.
        tight = inference_energy_budget(30e-6, 2.56, rr_cycle_slots=1)
        relaxed = inference_energy_budget(30e-6, 2.56, rr_cycle_slots=12, duty_nodes=3)
        assert relaxed == pytest.approx(4 * tight)

    def test_duty_exceeds_cycle_rejected(self):
        with pytest.raises(EnergyModelError):
            inference_energy_budget(1.0, 1.0, rr_cycle_slots=2, duty_nodes=3)
