"""Tests for TrainedSensorBundle (uses the session-scoped tiny bundle)."""

import numpy as np
import pytest

from repro.core.scheduling import RankTable
from repro.datasets.body import BodyLocation
from repro.errors import ConfigurationError
from repro.sim.training import TrainedSensorBundle, TrainingConfig


class TestTrainedSensorBundle:
    def test_one_entry_per_location(self, tiny_bundle, tiny_dataset):
        assert set(tiny_bundle.by_location) == set(tiny_dataset.spec.locations)

    def test_node_ids_follow_location_order(self, tiny_bundle, tiny_dataset):
        for node_id, location in enumerate(tiny_dataset.spec.locations):
            assert tiny_bundle.node_id_of(location) == node_id
            assert tiny_bundle.location_of(node_id) is location

    def test_pruned_models_fit_budget(self, tiny_bundle):
        for entry in tiny_bundle.by_location.values():
            assert entry.pruned_inference_energy_j <= tiny_bundle.budget_j

    def test_pruned_energy_below_unpruned(self, tiny_bundle):
        for entry in tiny_bundle.by_location.values():
            assert entry.pruned_inference_energy_j < entry.inference_energy_j

    def test_models_predict(self, tiny_bundle, tiny_dataset):
        for pruned in (False, True):
            models = tiny_bundle.models(pruned=pruned)
            for location in tiny_dataset.spec.locations:
                node_id = tiny_bundle.node_id_of(location)
                X = tiny_dataset.val[location].X[:4]
                probs = models[node_id].predict_proba(X)
                assert probs.shape == (4, tiny_dataset.n_classes)
                np.testing.assert_allclose(probs.sum(axis=1), 1.0)

    def test_models_learned_something(self, tiny_bundle):
        # Even the tiny recipe should comfortably beat chance (1/6).
        for entry in tiny_bundle.by_location.values():
            assert entry.val_accuracy > 0.3

    def test_rank_table_complete(self, tiny_bundle, tiny_dataset):
        table = tiny_bundle.rank_table
        assert isinstance(table, RankTable)
        assert table.labels == list(range(tiny_dataset.n_classes))
        assert set(table.node_ids) == {0, 1, 2}

    def test_rank_table_consistent_with_val_accuracy(self, tiny_bundle):
        table = tiny_bundle.rank_table
        for label in table.labels:
            ranked = table.ranked_nodes(label)
            accs = [
                tiny_bundle.entry(tiny_bundle.location_of(n)).pruned_val_per_class[label]
                for n in ranked
            ]
            assert all(a >= b for a, b in zip(accs, accs[1:]))

    def test_confidence_matrix_covers_all(self, tiny_bundle, tiny_dataset):
        matrix = tiny_bundle.confidence_matrix
        assert matrix.n_classes == tiny_dataset.n_classes
        assert set(matrix.node_ids) == {0, 1, 2}

    def test_inference_energies_map(self, tiny_bundle):
        pruned = tiny_bundle.inference_energies(pruned=True)
        full = tiny_bundle.inference_energies(pruned=False)
        assert set(pruned) == {0, 1, 2}
        assert all(pruned[n] < full[n] for n in pruned)

    def test_unknown_location_rejected(self, tiny_bundle):
        class Fake:
            value = "nowhere"

        with pytest.raises(ConfigurationError):
            tiny_bundle.entry(Fake())

    def test_unknown_node_rejected(self, tiny_bundle):
        with pytest.raises(ConfigurationError):
            tiny_bundle.location_of(99)

    def test_invalid_budget_rejected(self, tiny_dataset):
        with pytest.raises(ConfigurationError):
            TrainedSensorBundle.train(tiny_dataset, budget_j=0.0)

    def test_invalid_training_config(self):
        with pytest.raises(ConfigurationError):
            TrainingConfig(epochs=0)
        with pytest.raises(ConfigurationError):
            TrainingConfig(learning_rate=0)
