"""Non-volatile processor (NVP) intermittent compute model.

The paper's compute node (from ResIRCA, HPCA'20) checkpoints
architectural state to non-volatile memory, so an inference interrupted
by a power failure resumes instead of restarting.  This model tracks one
task's *work energy*: each execution burst converts available capacitor
energy into progress, minus a checkpoint overhead fraction; the task
completes when cumulative useful work reaches the task's total energy.

A volatile (non-NVP) node is the special case ``volatile=True``: an
interrupted task loses all progress — that is the hardware of the
paper's Fig. 1 motivation study before NVPs are brought in.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import SimulationError
from repro.utils.validation import check_fraction, check_positive

#: Observability hook: ``observer(event, payload)`` with ``event`` one of
#: ``"task_started"`` / ``"burst"`` / ``"task_aborted"``.  Installed by
#: the owning node when tracing is on (see ``SensorNode.attach_obs``);
#: ``None`` (the default) costs a single branch per transition.
NVPObserver = Callable[[str, Dict[str, object]], None]


class TaskState(enum.Enum):
    """Lifecycle of the single in-flight task."""

    IDLE = "idle"
    IN_PROGRESS = "in_progress"
    COMPLETED = "completed"


@dataclass(frozen=True)
class BurstOutcome:
    """Result of one execution burst."""

    consumed_j: float
    progressed_j: float
    completed: bool


class NonVolatileProcessor:
    """Intermittent execution engine for one task at a time.

    Parameters
    ----------
    checkpoint_overhead:
        Fraction of consumed energy spent on NVM checkpointing rather
        than useful work (0 for an ideal NVP).
    volatile:
        If true, progress is lost whenever a burst ends without
        completing the task (classic volatile MCU).
    """

    def __init__(self, checkpoint_overhead: float = 0.05, volatile: bool = False) -> None:
        check_fraction("checkpoint_overhead", checkpoint_overhead)
        if checkpoint_overhead >= 1.0:
            raise SimulationError("checkpoint_overhead must be < 1")
        self.checkpoint_overhead = float(checkpoint_overhead)
        self.volatile = bool(volatile)
        self._total_work_j: Optional[float] = None
        self._done_work_j = 0.0
        self._state = TaskState.IDLE
        self._completed_tasks = 0
        self._aborted_tasks = 0
        self.observer: Optional[NVPObserver] = None

    # ------------------------------------------------------------------

    @property
    def state(self) -> TaskState:
        """Current task state."""
        return self._state

    @property
    def completed_tasks(self) -> int:
        """Tasks finished since construction."""
        return self._completed_tasks

    @property
    def aborted_tasks(self) -> int:
        """Tasks abandoned via :meth:`abort`."""
        return self._aborted_tasks

    @property
    def useful_fraction(self) -> float:
        """Fraction of each consumed joule that becomes progress."""
        return 1.0 - self.checkpoint_overhead

    @property
    def done_work_j(self) -> float:
        """Useful joules banked toward the in-flight task (0 when idle).

        Scan-friendly counterpart of :attr:`progress_fraction`: the
        vectorized kernel seeds its per-lane progress column from this.
        """
        if self._state is not TaskState.IN_PROGRESS:
            return 0.0
        return self._done_work_j

    @property
    def remaining_work_j(self) -> float:
        """Useful joules still required to finish the in-flight task."""
        if self._state is not TaskState.IN_PROGRESS:
            return 0.0
        return self._total_work_j - self._done_work_j

    @property
    def progress_fraction(self) -> float:
        """Completed fraction of the in-flight task (0 when idle)."""
        if self._state is not TaskState.IN_PROGRESS or not self._total_work_j:
            return 0.0
        return self._done_work_j / self._total_work_j

    # ------------------------------------------------------------------

    def start_task(self, total_work_j: float) -> None:
        """Begin a new task requiring ``total_work_j`` of useful work."""
        check_positive("total_work_j", total_work_j)
        if self._state is TaskState.IN_PROGRESS:
            raise SimulationError("a task is already in progress; abort or finish it")
        self._total_work_j = float(total_work_j)
        self._done_work_j = 0.0
        self._state = TaskState.IN_PROGRESS
        if self.observer is not None:
            self.observer("task_started", {"total_work_j": self._total_work_j})

    def execute_burst(self, available_j: float) -> BurstOutcome:
        """Run with ``available_j`` of energy; returns what happened.

        Consumes at most what the remaining work (plus checkpoint
        overhead) requires.  On a volatile node, a burst that does not
        finish the task wipes its progress.
        """
        if self._state is not TaskState.IN_PROGRESS:
            raise SimulationError("no task in progress")
        if available_j < 0:
            raise SimulationError(f"available_j must be >= 0, got {available_j}")

        useful_fraction = 1.0 - self.checkpoint_overhead
        needed_j = self.remaining_work_j / useful_fraction
        consumed = min(available_j, needed_j)
        progressed = consumed * useful_fraction
        self._done_work_j += progressed
        # Snapshot the fraction while the task is still IN_PROGRESS: the
        # completing burst finalizes state below, after which
        # ``progress_fraction`` reads 0.0 and traces would lie.
        fraction = self._done_work_j / self._total_work_j

        if self._done_work_j >= self._total_work_j - 1e-15:
            self._state = TaskState.COMPLETED
            self._completed_tasks += 1
            self._total_work_j = None
            self._done_work_j = 0.0
            outcome = BurstOutcome(consumed, progressed, True)
        else:
            if self.volatile:
                # The burst ends in a power failure; everything is lost.
                self._done_work_j = 0.0
                fraction = 0.0
            outcome = BurstOutcome(consumed, progressed, False)
        if self.observer is not None:
            self.observer(
                "burst",
                {
                    "consumed_j": outcome.consumed_j,
                    "progressed_j": outcome.progressed_j,
                    "completed": outcome.completed,
                    "progress_fraction": fraction,
                },
            )
        return outcome

    def abort(self) -> None:
        """Abandon the in-flight task (e.g. its input window expired)."""
        if self._state is TaskState.IN_PROGRESS:
            self._aborted_tasks += 1
            if self.observer is not None:
                self.observer("task_aborted", {"done_work_j": self._done_work_j})
        self._total_work_j = None
        self._done_work_j = 0.0
        self._state = TaskState.IDLE

    def acknowledge_completion(self) -> None:
        """Return to IDLE after a completion has been consumed."""
        if self._state is not TaskState.COMPLETED:
            raise SimulationError("no completed task to acknowledge")
        self._state = TaskState.IDLE
