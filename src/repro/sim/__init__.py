"""End-to-end experiment harnesses.

* :mod:`repro.sim.training` — trains the per-location CNNs, prunes the
  Baseline-2 variants, and seeds the rank table + confidence matrix;
* :mod:`repro.sim.experiment` — the slot-by-slot EH-WSN simulation that
  runs any :class:`~repro.core.policies.PolicySpec`;
* :mod:`repro.sim.baselines` — the fully-powered baseline evaluator;
* :mod:`repro.sim.completion` — the Fig. 1 motivation study;
* :mod:`repro.sim.personalization` — the Fig. 6 adaptation study;
* :mod:`repro.sim.sweep` — policy grids for Figs. 4/5 and Table I;
* :mod:`repro.sim.predcache` — the per-seed material shared by every
  policy of a sweep (timeline, windows, batched softmax);
* :mod:`repro.sim.kernel` — the structure-of-arrays vectorized slot
  engine eligible runs are routed through (byte-identical, much faster).
"""

from repro.sim.training import TrainedLocationModel, TrainedSensorBundle, TrainingConfig
from repro.sim.results import CompletionBreakdown, ExperimentResult, SlotRecord
from repro.sim.experiment import HARExperiment, SimulationConfig
from repro.sim.kernel import (
    BatchGroup,
    SlotKernel,
    kernel_eligible,
    kernel_ineligibility_reason,
    run_group_batch,
    run_node_schedule,
    run_policy_batch,
)
from repro.sim.predcache import PredictionCache, RunMaterial, build_run_material
from repro.sim.baselines import BaselineResult, evaluate_baseline, per_sensor_accuracy
from repro.sim.completion import CompletionExperiment, CompletionStudyResult
from repro.sim.personalization import PersonalizationExperiment, PersonalizationResult
from repro.sim.sweep import PolicySweep, SweepResult, paper_policy_grid

__all__ = [
    "TrainedLocationModel",
    "TrainedSensorBundle",
    "TrainingConfig",
    "CompletionBreakdown",
    "ExperimentResult",
    "SlotRecord",
    "HARExperiment",
    "SimulationConfig",
    "BatchGroup",
    "SlotKernel",
    "kernel_eligible",
    "kernel_ineligibility_reason",
    "run_group_batch",
    "run_node_schedule",
    "run_policy_batch",
    "PredictionCache",
    "RunMaterial",
    "build_run_material",
    "BaselineResult",
    "evaluate_baseline",
    "per_sensor_accuracy",
    "CompletionExperiment",
    "CompletionStudyResult",
    "PersonalizationExperiment",
    "PersonalizationResult",
    "PolicySweep",
    "SweepResult",
    "paper_policy_grid",
]
